#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"
#include "util/prng.h"
#include "util/types.h"

/// Simulated message network with latency, bandwidth and loss injection.
///
/// File transfers in FileInsurer happen off-chain between clients and
/// providers; the protocol only sets *deadlines* for them
/// (`DelayPerSize × f.size`). This network model lets integration tests and
/// examples exercise those deadlines realistically: a slow or partitioned
/// provider misses its `Auto_CheckAlloc`/`Auto_CheckRefresh` window and the
/// protocol's failure paths fire.
namespace fi::sim {

using NodeId = std::uint64_t;

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::string kind;                  ///< application-defined tag
  std::vector<std::uint8_t> payload; ///< opaque bytes (size drives latency)
  std::uint64_t correlation = 0;     ///< request/response matching
};

/// Per-link behaviour knobs.
struct LinkProfile {
  Time base_latency = 1;      ///< ticks per message, regardless of size
  Time ticks_per_kib = 1;     ///< bandwidth: extra ticks per KiB of payload
  double drop_probability = 0.0;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(EventQueue& queue, std::uint64_t seed)
      : queue_(queue), rng_(seed) {}

  /// Registers a node and its message handler; returns the node id.
  NodeId add_node(Handler handler);

  /// Overrides the default link profile for messages from->to.
  void set_link(NodeId from, NodeId to, LinkProfile profile);
  void set_default_link(LinkProfile profile) { default_link_ = profile; }

  /// Cuts (or restores) all delivery to/from a node — models a crashed or
  /// partitioned participant.
  void set_node_down(NodeId node, bool down);

  /// Sends a message; delivery is scheduled on the event queue according to
  /// the link profile. Dropped/partitioned messages vanish silently, as on
  /// a real network.
  void send(Message message);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  [[nodiscard]] LinkProfile link_for(NodeId from, NodeId to) const;

  EventQueue& queue_;
  util::Xoshiro256 rng_;
  std::vector<Handler> handlers_;
  std::unordered_map<std::uint64_t, LinkProfile> links_;  // key: from<<32|to
  LinkProfile default_link_;
  std::vector<bool> down_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace fi::sim
