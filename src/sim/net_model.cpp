#include "sim/net_model.h"

#include <algorithm>

#include "util/check.h"

namespace fi::sim {

NetModel::NetModel(const NetConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      partitioned_(config.regions, 0),
      down_(config.regions, 0),
      region_delivered_(config.regions, 0),
      region_latency_sum_(config.regions, 0),
      region_latency_max_(config.regions, 0) {
  FI_CHECK_MSG(config.regions > 0, "NetModel needs at least one region");
}

void NetModel::set_region_partitioned(std::uint64_t region, bool partitioned) {
  partitioned_[region] = partitioned ? 1 : 0;
}

void NetModel::set_region_down(std::uint64_t region, bool down) {
  down_[region] = down ? 1 : 0;
}

std::uint64_t NetModel::source_region(const TransferMessage& msg) const {
  // Uploads carry `from_sector == ~0` (no sending sector): the client
  // transmits from the backbone.
  if (msg.from_sector == ~std::uint64_t{0}) return kBackboneRegion;
  return region_of_sector(msg.from_sector);
}

bool NetModel::path_down(std::uint64_t src, std::uint64_t dst) const {
  return (src != kBackboneRegion && region_down(src)) ||
         (dst != kBackboneRegion && region_down(dst));
}

bool NetModel::path_partitioned(std::uint64_t src, std::uint64_t dst) const {
  if (src == dst) return false;  // intra-region links survive a partition
  return (src != kBackboneRegion && region_partitioned(src)) ||
         (dst != kBackboneRegion && region_partitioned(dst));
}

void NetModel::send(Time now, ByteCount payload_bytes,
                    const TransferMessage& message) {
  ++sent_;
  const std::uint64_t src = source_region(message);
  const std::uint64_t dst = region_of_sector(message.to_sector);
  if (path_down(src, dst)) {
    ++dropped_down_;
    return;
  }
  if (path_partitioned(src, dst)) {
    ++dropped_partition_;
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.uniform_double() < config_.drop_probability) {
    ++dropped_loss_;
    return;
  }
  Time latency = config_.base_latency;
  if (src != dst) latency += config_.region_latency;
  latency += config_.ticks_per_kib * ((payload_bytes + 1023) / 1024);
  if (config_.jitter > 0) latency += rng_.uniform_below(config_.jitter + 1);

  InFlight entry;
  entry.deliver_at = now + latency;
  entry.seq = next_seq_++;
  entry.sent_at = now;
  entry.msg = message;
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), LaterFirst{});
}

Time NetModel::next_delivery_time() const {
  return heap_.empty() ? kNoTime : heap_.front().deliver_at;
}

bool NetModel::pop_due(Time now, TransferMessage& out) {
  while (!heap_.empty() && heap_.front().deliver_at <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), LaterFirst{});
    const InFlight entry = heap_.back();
    heap_.pop_back();
    const std::uint64_t src = source_region(entry.msg);
    const std::uint64_t dst = region_of_sector(entry.msg.to_sector);
    if (path_down(src, dst)) {
      ++dropped_down_;
      continue;
    }
    if (path_partitioned(src, dst)) {
      ++dropped_partition_;
      continue;
    }
    ++delivered_;
    if (entry.deliver_at > entry.msg.deadline) ++delivered_late_;
    const Time latency = entry.deliver_at - entry.sent_at;
    ++region_delivered_[dst];
    region_latency_sum_[dst] += latency;
    region_latency_max_[dst] = std::max(region_latency_max_[dst], latency);
    out = entry.msg;
    return true;
  }
  return false;
}

void NetModel::save_state(util::BinaryWriter& writer) const {
  for (const std::uint64_t word : rng_.state()) writer.u64(word);
  for (const std::uint8_t flag : partitioned_) writer.u8(flag);
  for (const std::uint8_t flag : down_) writer.u8(flag);

  // The in-flight set, sorted by its total delivery order — canonical
  // bytes regardless of the heap array's incidental layout.
  std::vector<InFlight> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(),
            [](const InFlight& a, const InFlight& b) {
              if (a.deliver_at != b.deliver_at) {
                return a.deliver_at < b.deliver_at;
              }
              return a.seq < b.seq;
            });
  writer.u64(sorted.size());
  for (const InFlight& entry : sorted) {
    writer.u64(entry.deliver_at);
    writer.u64(entry.seq);
    writer.u64(entry.sent_at);
    writer.u64(entry.msg.file);
    writer.u32(entry.msg.index);
    writer.u64(entry.msg.from_sector);
    writer.u64(entry.msg.to_sector);
    writer.u64(entry.msg.client);
    writer.u64(entry.msg.deadline);
  }
  writer.u64(next_seq_);

  writer.u64(sent_);
  writer.u64(delivered_);
  writer.u64(delivered_late_);
  writer.u64(dropped_loss_);
  writer.u64(dropped_partition_);
  writer.u64(dropped_down_);
  for (const std::uint64_t v : region_delivered_) writer.u64(v);
  for (const std::uint64_t v : region_latency_sum_) writer.u64(v);
  for (const std::uint64_t v : region_latency_max_) writer.u64(v);
}

void NetModel::load_state(util::BinaryReader& reader) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = reader.u64();
  rng_.set_state(rng_state);
  for (std::uint8_t& flag : partitioned_) flag = reader.u8();
  for (std::uint8_t& flag : down_) flag = reader.u8();

  heap_.clear();
  const std::uint64_t in_flight = reader.count(68);
  heap_.reserve(in_flight);
  for (std::uint64_t i = 0; i < in_flight; ++i) {
    InFlight entry;
    entry.deliver_at = reader.u64();
    entry.seq = reader.u64();
    entry.sent_at = reader.u64();
    entry.msg.file = reader.u64();
    entry.msg.index = reader.u32();
    entry.msg.from_sector = reader.u64();
    entry.msg.to_sector = reader.u64();
    entry.msg.client = reader.u64();
    entry.msg.deadline = reader.u64();
    heap_.push_back(entry);
  }
  std::make_heap(heap_.begin(), heap_.end(), LaterFirst{});
  next_seq_ = reader.u64();

  sent_ = reader.u64();
  delivered_ = reader.u64();
  delivered_late_ = reader.u64();
  dropped_loss_ = reader.u64();
  dropped_partition_ = reader.u64();
  dropped_down_ = reader.u64();
  for (std::uint64_t& v : region_delivered_) v = reader.u64();
  for (std::uint64_t& v : region_latency_sum_) v = reader.u64();
  for (std::uint64_t& v : region_latency_max_) v = reader.u64();
}

}  // namespace fi::sim
