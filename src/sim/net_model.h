#pragma once

#include <cstdint>
#include <vector>

#include "util/binary_io.h"
#include "util/prng.h"
#include "util/types.h"

/// Serializable deterministic delivery substrate for the scenario engine.
///
/// `sim::Network` (network.h) is the closure-based model used by agent
/// tests; its handlers cannot be serialized, so it cannot live inside a
/// snapshot. `NetModel` is the scenario-grade replacement: typed messages
/// in a flat min-heap keyed `(deliver_at, seq)` — the same order-is-state
/// tie-break discipline as `EventQueue` and the protocol pending list — a
/// private seeded RNG for latency/loss draws, and per-region partition and
/// outage flags. Everything mutable has a canonical little-endian encoding
/// (`save_state`/`load_state`), so a resumed run delivers byte-identically
/// to an uninterrupted one, in-flight messages included.
///
/// Topology: providers live in regional subnets; sector `s` belongs to
/// region `s % regions`. Clients (upload senders) sit on a backbone that is
/// never partitioned or down. Intra-region links use `base_latency`;
/// anything crossing regions (or the backbone) adds `region_latency`.
namespace fi::sim {

/// Latency/loss knobs, fixed at construction (they come from the scenario
/// spec, which is immutable for the lifetime of a run). All-zero knobs
/// with `regions == 1` make delivery instantaneous: a message sent at time
/// `t` is due at `t`, no RNG draw is consumed, and the model is
/// behaviorally invisible — the zero-latency special case the equivalence
/// tests pin.
struct NetConfig {
  std::uint64_t regions = 1;
  Time base_latency = 0;      ///< ticks per message, any link
  Time region_latency = 0;    ///< extra ticks when crossing regions
  Time ticks_per_kib = 0;     ///< bandwidth: extra ticks per KiB of payload
  Time jitter = 0;            ///< uniform extra in [0, jitter]
  double drop_probability = 0.0;  ///< random loss, sampled at send
};

/// Sender region for messages that do not originate in a sector (upload
/// confirmations travel client -> provider; the client is on the backbone).
inline constexpr std::uint64_t kBackboneRegion = ~std::uint64_t{0};

/// One replica-transfer request in flight. Mirrors
/// `core::ReplicaTransferRequested` field-for-field without depending on
/// the core layer, so `src/sim` stays a standalone substrate.
struct TransferMessage {
  std::uint64_t file = 0;
  std::uint32_t index = 0;
  std::uint64_t from_sector = 0;  ///< sender sector; `~0` for uploads
  std::uint64_t to_sector = 0;    ///< receiving sector (the destination)
  std::uint64_t client = 0;
  Time deadline = 0;  ///< protocol deadline (`DelayPerSize × f.size`)
};

class NetModel {
 public:
  NetModel(const NetConfig& config, std::uint64_t seed);

  [[nodiscard]] std::uint64_t regions() const { return config_.regions; }
  [[nodiscard]] std::uint64_t region_of_sector(std::uint64_t sector) const {
    return sector % config_.regions;
  }

  // ---- Net-condition injection -------------------------------------------
  /// A partitioned region keeps intra-region links but loses every link
  /// that crosses its border (other regions and the backbone).
  void set_region_partitioned(std::uint64_t region, bool partitioned);
  /// A down region (crash outage) loses every link, intra-region included.
  void set_region_down(std::uint64_t region, bool down);
  [[nodiscard]] bool region_partitioned(std::uint64_t region) const {
    return partitioned_[region] != 0;
  }
  [[nodiscard]] bool region_down(std::uint64_t region) const {
    return down_[region] != 0;
  }
  /// Either condition: the region can neither prove nor receive.
  [[nodiscard]] bool region_blocked(std::uint64_t region) const {
    return region_partitioned(region) || region_down(region);
  }

  // ---- Sending and delivery ----------------------------------------------
  /// Samples loss and latency for `message` and queues it. A message whose
  /// path is blocked at send time, or that loses the `drop_probability`
  /// draw, is dropped immediately (counted, never queued). Draw order is
  /// canonical: the loss draw first, then — only for surviving messages
  /// with `jitter > 0` — the jitter draw.
  void send(Time now, ByteCount payload_bytes, const TransferMessage& message);

  /// Due time of the earliest in-flight message, or `kNoTime` when none.
  [[nodiscard]] Time next_delivery_time() const;

  /// Pops the earliest message due at or before `now` into `out`; returns
  /// false when none is due. Messages whose path is blocked *at delivery
  /// time* are consumed and counted as dropped instead of returned — a
  /// partition that begins mid-flight loses the traffic crossing it.
  [[nodiscard]] bool pop_due(Time now, TransferMessage& out);

  [[nodiscard]] std::size_t in_flight() const { return heap_.size(); }

  // ---- Counters -----------------------------------------------------------
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  /// Delivered after the message's protocol deadline (the network, not an
  /// adversary, made the transfer miss its window).
  [[nodiscard]] std::uint64_t delivered_late() const { return delivered_late_; }
  [[nodiscard]] std::uint64_t dropped_loss() const { return dropped_loss_; }
  [[nodiscard]] std::uint64_t dropped_partition() const {
    return dropped_partition_;
  }
  [[nodiscard]] std::uint64_t dropped_down() const { return dropped_down_; }
  /// Per-destination-region delivery stats (latency in ticks).
  [[nodiscard]] std::uint64_t region_delivered(std::uint64_t region) const {
    return region_delivered_[region];
  }
  [[nodiscard]] std::uint64_t region_latency_sum(std::uint64_t region) const {
    return region_latency_sum_[region];
  }
  [[nodiscard]] std::uint64_t region_latency_max(std::uint64_t region) const {
    return region_latency_max_[region];
  }

  // ---- Snapshot -----------------------------------------------------------
  /// Canonical encoding: RNG state, region flags, the in-flight set sorted
  /// by `(deliver_at, seq)`, the seq counter, and every counter. The heap's
  /// in-memory layout is not state — delivery order is fully determined by
  /// the `(deliver_at, seq)` keys.
  void save_state(util::BinaryWriter& writer) const;
  void load_state(util::BinaryReader& reader);

 private:
  struct InFlight {
    Time deliver_at = 0;
    std::uint64_t seq = 0;  ///< tie-breaker: FIFO within a timestamp
    Time sent_at = 0;
    TransferMessage msg;
  };
  /// `std::push_heap`/`pop_heap` comparator: max-heap inverted into a
  /// min-heap on `(deliver_at, seq)`.
  struct LaterFirst {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t source_region(const TransferMessage& msg) const;
  /// Blocked verdict for the (source, destination) pair; `down` outranks
  /// `partitioned` in drop attribution.
  [[nodiscard]] bool path_down(std::uint64_t src, std::uint64_t dst) const;
  [[nodiscard]] bool path_partitioned(std::uint64_t src,
                                      std::uint64_t dst) const;

  // fi-lint: not-serialized(construction input; rebuilt from the scenario
  // spec on resume, identical by spec round-trip)
  NetConfig config_;
  util::Xoshiro256 rng_;
  /// Per-region flags as u8 vectors (fixed size `regions`); not
  /// vector<bool> so the encoding loop reads naturally.
  std::vector<std::uint8_t> partitioned_;
  std::vector<std::uint8_t> down_;
  std::vector<InFlight> heap_;  ///< binary min-heap via LaterFirst
  std::uint64_t next_seq_ = 0;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_late_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_partition_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::vector<std::uint64_t> region_delivered_;
  std::vector<std::uint64_t> region_latency_sum_;
  std::vector<std::uint64_t> region_latency_max_;
};

}  // namespace fi::sim
