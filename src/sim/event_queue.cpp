#include "sim/event_queue.h"

namespace fi::sim {

std::uint64_t EventQueue::schedule_at(Time at, Handler handler) {
  FI_CHECK_MSG(at >= now_, "cannot schedule event in the past");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(handler));
  ++live_count_;
  return id;
}

std::uint64_t EventQueue::schedule_after(Time delay, Handler handler) {
  return schedule_at(now_ + delay, std::move(handler));
}

bool EventQueue::cancel(std::uint64_t event_id) {
  const auto it = handlers_.find(event_id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);  // entry stays queued; pop skips dead ids
  --live_count_;
  return true;
}

bool EventQueue::pop_and_run() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    --live_count_;
    now_ = entry.at;
    handler();
    return true;
  }
  return false;
}

bool EventQueue::step() { return pop_and_run(); }

Time EventQueue::next_event_time() {
  while (!queue_.empty() && !handlers_.contains(queue_.top().id)) {
    queue_.pop();
  }
  return queue_.empty() ? kNoTime : queue_.top().at;
}

void EventQueue::run_until(Time deadline) {
  FI_CHECK(deadline >= now_);
  for (;;) {
    // Peek past cancelled entries to find the next live event time.
    bool ran = false;
    while (!queue_.empty()) {
      const Entry& top = queue_.top();
      if (!handlers_.contains(top.id)) {
        queue_.pop();
        continue;
      }
      if (top.at > deadline) break;
      pop_and_run();
      ran = true;
      break;
    }
    if (!ran) break;
  }
  now_ = deadline;
}

std::size_t EventQueue::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && pop_and_run()) ++executed;
  FI_CHECK_MSG(executed < max_events || empty(),
               "event budget exhausted: possible self-rescheduling loop");
  return executed;
}

}  // namespace fi::sim
