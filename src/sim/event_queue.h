#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/types.h"

/// Discrete-event scheduler: the single clock for protocol pending-list
/// tasks, network message deliveries, and actor behaviour. Events at equal
/// timestamps run in scheduling order (stable), which keeps simulations
/// deterministic under a fixed seed.
namespace fi::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `at` (>= now). Returns an event
  /// id usable with `cancel`.
  std::uint64_t schedule_at(Time at, Handler handler);

  /// Schedules `handler` `delay` ticks from now.
  std::uint64_t schedule_after(Time delay, Handler handler);

  /// Cancels a pending event; returns false if it already ran or is unknown.
  bool cancel(std::uint64_t event_id);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Timestamp of the earliest live event, or `kNoTime` when empty.
  /// (Prunes cancelled entries encountered at the head.)
  [[nodiscard]] Time next_event_time();

  /// Runs a single event; returns false if the queue is empty.
  bool step();

  /// Runs all events with time <= deadline, then advances the clock to
  /// `deadline` even if no event landed exactly there.
  void run_until(Time deadline);

  /// Runs until the queue drains; returns the number of events executed.
  /// `max_events` guards against runaway self-rescheduling loops.
  std::size_t run_all(std::size_t max_events = 100'000'000);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-breaker: stable FIFO within a timestamp
    std::uint64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_map<std::uint64_t, Handler> handlers_;  // id -> live handler
  std::size_t live_count_ = 0;
};

}  // namespace fi::sim
