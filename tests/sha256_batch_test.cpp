#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/hash.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/sha256_batch.h"
#include "util/hex.h"
#include "util/prng.h"

/// Conformance suite for the multi-lane SHA-256 batch kernel: every digest
/// it produces must be bitwise identical to the scalar FIPS 180-4 hasher,
/// across NIST vectors, every chunk-boundary length, randomized lengths,
/// and every batch width around the lane count.
namespace fi::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Hashes `messages` through the batch API and checks each digest against
/// the scalar hasher.
void expect_batch_matches_scalar(
    const std::vector<std::vector<std::uint8_t>>& messages) {
  std::vector<std::span<const std::uint8_t>> spans(messages.begin(),
                                                   messages.end());
  std::vector<Digest> digests(messages.size());
  sha256_many(spans, digests);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(digests[i], sha256(messages[i])) << "message " << i;
  }
}

// ---------------------------------------------------------------------------
// NIST vectors through the batch path
// ---------------------------------------------------------------------------

TEST(Sha256Batch, NistVectorsInOneBatch) {
  // Same-length messages share a lane group; distinct lengths split into
  // groups — either way every digest must be the published one.
  std::vector<std::vector<std::uint8_t>> messages = {
      bytes_of(""),
      bytes_of("abc"),
      bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      std::vector<std::uint8_t>(1'000'000, 'a'),
  };
  std::vector<std::span<const std::uint8_t>> spans(messages.begin(),
                                                   messages.end());
  std::vector<Digest> digests(messages.size());
  sha256_many(spans, digests);
  EXPECT_EQ(util::to_hex(digests[0]),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::to_hex(digests[1]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(util::to_hex(digests[2]),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  EXPECT_EQ(util::to_hex(digests[3]),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Batch, EightIdenticalNistVectorsFillOneLaneGroup) {
  std::vector<std::vector<std::uint8_t>> messages(kSha256Lanes,
                                                  bytes_of("abc"));
  std::vector<std::span<const std::uint8_t>> spans(messages.begin(),
                                                   messages.end());
  std::vector<Digest> digests(messages.size());
  sha256_many(spans, digests);
  for (const Digest& d : digests) {
    EXPECT_EQ(
        util::to_hex(d),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  }
}

// ---------------------------------------------------------------------------
// Chunk-boundary lengths
// ---------------------------------------------------------------------------

TEST(Sha256Batch, EveryLengthAroundBlockAndPaddingBoundaries) {
  // 0..130 covers: empty input, the 55/56 padding split (one vs two tail
  // blocks), exact one-block (64) and two-block (128) messages, and the
  // straddles on either side. One batch of 8 copies per length so the lane
  // kernel (not the scalar fallback) is what's under test.
  util::Xoshiro256 rng(7);
  for (std::size_t len = 0; len <= 130; ++len) {
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    std::vector<std::vector<std::uint8_t>> messages(kSha256Lanes, msg);
    expect_batch_matches_scalar(messages);
  }
}

TEST(Sha256Batch, EmptyBatchAndEmptyMessages) {
  sha256_many({}, {});  // no messages: flush of nothing is a no-op
  std::vector<std::vector<std::uint8_t>> empties(kSha256Lanes);
  expect_batch_matches_scalar(empties);
}

// ---------------------------------------------------------------------------
// Randomized lengths and batch widths
// ---------------------------------------------------------------------------

TEST(Sha256Batch, RandomizedLengthsAndWidths) {
  util::Xoshiro256 rng(42);
  // Widths bracket the lane count: scalar-only, partial group, exactly one
  // group, group + remainder, multiple groups.
  for (std::size_t width : {1u, 3u, 7u, 8u, 9u, 16u, 29u, 64u}) {
    std::vector<std::vector<std::uint8_t>> messages;
    messages.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      // Mixed lengths, biased toward collisions so some groups fill lanes.
      const std::size_t len = (rng() % 2 == 0) ? (rng() % 8) * 64
                                               : rng() % 700;
      std::vector<std::uint8_t> msg(len);
      for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
      messages.push_back(std::move(msg));
    }
    expect_batch_matches_scalar(messages);
  }
}

TEST(Sha256Batch, ReusedBatchObjectIsClean) {
  // A second flush must not see the first round's entries or arena bytes.
  Sha256Batch batch;
  std::vector<std::uint8_t> a = bytes_of("first");
  std::vector<std::uint8_t> b = bytes_of("second round");
  Digest da{}, db{};
  batch.add(a, &da);
  batch.flush();
  EXPECT_EQ(batch.pending(), 0u);
  batch.add(b, &db);
  batch.flush();
  EXPECT_EQ(da, sha256(a));
  EXPECT_EQ(db, sha256(b));
}

// ---------------------------------------------------------------------------
// Tagged encodings mirror hash_bytes / hash_pair
// ---------------------------------------------------------------------------

TEST(Sha256Batch, TaggedMatchesHashBytes) {
  util::Xoshiro256 rng(3);
  std::vector<std::vector<std::uint8_t>> bodies;
  for (std::size_t i = 0; i < 20; ++i) {
    std::vector<std::uint8_t> body(rng() % 200);
    for (auto& x : body) x = static_cast<std::uint8_t>(rng());
    bodies.push_back(std::move(body));
  }
  Sha256Batch batch;
  std::vector<Digest> digests(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    batch.add_tagged("fi/test/tag", bodies[i], &digests[i]);
  }
  batch.flush();
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    EXPECT_EQ(digests[i], hash_bytes("fi/test/tag", bodies[i]).bytes);
  }
}

TEST(Sha256Batch, TaggedPairMatchesHashPair) {
  util::Xoshiro256 rng(4);
  std::vector<std::pair<Hash256, Hash256>> pairs(kSha256Lanes + 3);
  for (auto& [l, r] : pairs) {
    for (auto& x : l.bytes) x = static_cast<std::uint8_t>(rng());
    for (auto& x : r.bytes) x = static_cast<std::uint8_t>(rng());
  }
  Sha256Batch batch;
  std::vector<Digest> digests(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    batch.add_tagged_pair("fi/test/pair", pairs[i].first.bytes,
                          pairs[i].second.bytes, &digests[i]);
  }
  batch.flush();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(digests[i],
              hash_pair("fi/test/pair", pairs[i].first, pairs[i].second).bytes);
  }
}

TEST(Sha256Batch, MerkleLeafHashesMatchScalarLeafHash) {
  util::Xoshiro256 rng(5);
  std::vector<std::uint8_t> data(kMerkleBlockSize * 21 + 17);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  std::vector<std::span<const std::uint8_t>> blocks;
  for (std::size_t off = 0; off < data.size(); off += kMerkleBlockSize) {
    blocks.push_back(std::span<const std::uint8_t>(data).subspan(
        off, std::min(kMerkleBlockSize, data.size() - off)));
  }
  std::vector<Hash256> hashes(blocks.size());
  merkle_leaf_hashes(blocks, hashes);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(hashes[i], merkle_leaf_hash(blocks[i]));
  }
}

TEST(Sha256Batch, MerkleRootUnchangedByBatchedConstruction) {
  // The tree now hashes leaves and interior levels through the lane
  // kernel; roots must match a hand-rolled scalar reconstruction.
  util::Xoshiro256 rng(6);
  for (std::size_t blocks : {1u, 2u, 3u, 8u, 9u, 64u, 100u}) {
    std::vector<std::uint8_t> data(blocks * kMerkleBlockSize - 5);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const MerkleTree tree = MerkleTree::over_data(data);
    std::vector<Hash256> level;
    for (std::size_t off = 0; off < data.size(); off += kMerkleBlockSize) {
      level.push_back(merkle_leaf_hash(std::span<const std::uint8_t>(data)
          .subspan(off, std::min(kMerkleBlockSize, data.size() - off))));
    }
    while (level.size() > 1) {
      std::vector<Hash256> next;
      for (std::size_t i = 0; i < level.size(); i += 2) {
        const Hash256& l = level[i];
        const Hash256& r = (i + 1 < level.size()) ? level[i + 1] : level[i];
        next.push_back(hash_pair("fi/merkle/node", l, r));
      }
      level = std::move(next);
    }
    EXPECT_EQ(tree.root(), level.front()) << blocks << " blocks";
  }
}

}  // namespace
}  // namespace fi::crypto
