// Snapshot/resume coverage: binary framing primitives, snapshot-file
// validation (truncation, corruption, wrong version), and the headline
// invariant — for every shipped config shape, save at an epoch E, load,
// and continue: the final report JSON and the canonical state hash must be
// byte-identical to the uninterrupted run, at engine.workers 1 and 8.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/spec.h"
#include "snapshot/snapshot.h"
#include "util/binary_io.h"
#include "util/config.h"

namespace fi {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Binary framing
// ---------------------------------------------------------------------------

TEST(BinaryIo, PrimitivesRoundTrip) {
  util::BinaryWriter writer;
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefULL);
  writer.u128((static_cast<unsigned __int128>(7) << 64) | 11u);
  writer.i64(-42);
  writer.f64(0.6180339887498949);
  writer.boolean(true);
  writer.boolean(false);
  writer.str("fileinsurer");
  writer.bytes(std::vector<std::uint8_t>{1, 2, 3});

  util::BinaryReader reader(writer.data());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefULL);
  const unsigned __int128 wide = reader.u128();
  EXPECT_EQ(static_cast<std::uint64_t>(wide), 11u);
  EXPECT_EQ(static_cast<std::uint64_t>(wide >> 64), 7u);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_EQ(reader.f64(), 0.6180339887498949);
  EXPECT_TRUE(reader.boolean());
  EXPECT_FALSE(reader.boolean());
  EXPECT_EQ(reader.str(), "fileinsurer");
  EXPECT_EQ(reader.bytes(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.exhausted());
}

TEST(BinaryIo, EncodingIsExplicitLittleEndian) {
  util::BinaryWriter writer;
  writer.u32(0x04030201u);
  ASSERT_EQ(writer.data().size(), 4u);
  EXPECT_EQ(writer.data()[0], 0x01);
  EXPECT_EQ(writer.data()[1], 0x02);
  EXPECT_EQ(writer.data()[2], 0x03);
  EXPECT_EQ(writer.data()[3], 0x04);
}

TEST(BinaryIo, ReadPastEndLatchesFailure) {
  util::BinaryWriter writer;
  writer.u32(5);
  util::BinaryReader reader(writer.data());
  (void)reader.u32();
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.u64(), 0u);  // past the end: zero value, sticky failure
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u8(), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryIo, HostileLengthPrefixIsRejectedBeforeAllocation) {
  util::BinaryWriter writer;
  writer.u64(~0ull);  // claims ~2^64 elements
  util::BinaryReader reader(writer.data());
  EXPECT_EQ(reader.count(8), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryIo, MalformedBooleanFails) {
  const std::uint8_t raw[1] = {2};
  util::BinaryReader reader(raw);
  (void)reader.boolean();
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryIo, HashOnlyWriterMatchesBufferedDigest) {
  util::BinaryWriter buffered;
  util::BinaryWriter hashing(/*keep_bytes=*/false);
  for (util::BinaryWriter* w : {&buffered, &hashing}) {
    w->u64(123456789);
    w->str("streaming state hash");
    w->f64(2.718281828459045);
  }
  EXPECT_TRUE(hashing.data().empty());
  EXPECT_EQ(hashing.size(), buffered.size());
  EXPECT_EQ(hashing.digest(), buffered.digest());
}

// ---------------------------------------------------------------------------
// Scenario fixtures
// ---------------------------------------------------------------------------

/// Directory holding the shipped configs (set by CMake).
#ifndef FI_CONFIG_DIR
#error "FI_CONFIG_DIR must be defined by the build"
#endif

std::vector<fs::path> shipped_configs() {
  std::vector<fs::path> configs;
  for (const auto& entry : fs::directory_iterator(FI_CONFIG_DIR)) {
    if (entry.path().extension() == ".cfg") configs.push_back(entry.path());
  }
  std::sort(configs.begin(), configs.end());
  return configs;
}

/// Scales a shipped config down to unit-test size while keeping its shape:
/// every phase kind, adversary strategy and knob combination survives, so
/// the round-trip suite exercises exactly the structures each config
/// stresses (mid-attack member lists, captivity streaks, audit periods)
/// without CI-scale populations.
scenario::ScenarioSpec shrunk_spec(const fs::path& config) {
  auto loaded = util::Config::load(config.string());
  EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  auto parsed = scenario::ScenarioSpec::from_config(loaded.value());
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  scenario::ScenarioSpec spec = std::move(parsed).value();
  spec.sectors = std::min<std::uint64_t>(spec.sectors, 80);
  spec.initial_files = std::min<std::uint64_t>(spec.initial_files, 120);
  for (scenario::PhaseSpec& phase : spec.phases) {
    phase.cycles = std::min<std::uint64_t>(phase.cycles, 6);
    phase.periods = std::min<std::uint64_t>(phase.periods, 1);
    phase.adds_per_cycle = std::min<std::uint64_t>(phase.adds_per_cycle, 8);
    phase.add_sectors = std::min<std::uint64_t>(phase.add_sectors, 10);
  }
  for (adversary::AdversarySpec& adv : spec.adversaries) {
    adv.start_epoch = std::min<std::uint64_t>(adv.start_epoch, 1);
    adv.sectors = std::min<std::uint64_t>(adv.sectors, 6);
    adv.requests_per_epoch =
        std::min<std::uint64_t>(adv.requests_per_epoch, 12);
  }
  if (spec.traffic.enabled) {
    spec.traffic.requests_per_cycle =
        std::min<std::uint64_t>(spec.traffic.requests_per_cycle, 48);
    if (spec.traffic.defense_enabled) {
      spec.traffic.defense_warmup =
          std::min<std::uint64_t>(spec.traffic.defense_warmup, 2);
    }
  }
  return spec;
}

std::uint64_t total_epochs(const scenario::ScenarioSpec& spec) {
  std::uint64_t cycles = 0;
  for (const scenario::PhaseSpec& phase : spec.phases) {
    cycles += phase.kind == scenario::PhaseKind::rent_audit
                  ? phase.periods * spec.params.rent_period_cycles
                  : phase.cycles;
  }
  return cycles;
}

struct RunOutcome {
  std::string report_json;
  std::string state_hash;
};

RunOutcome run_to_completion(scenario::ScenarioSpec spec) {
  scenario::ScenarioRunner runner(std::move(spec));
  const std::string json = runner.run().to_json();
  return {json, snapshot::state_hash(runner)};
}

fs::path temp_snapshot_path(const std::string& tag) {
  return fs::path(::testing::TempDir()) / ("fi_" + tag + ".fisnap");
}

/// The headline invariant: run uninterrupted; run again saving at
/// `save_epoch`; resume from the file (optionally at a different worker
/// count) and finish. All three reports and both state hashes must match
/// byte for byte.
void expect_save_load_identity(const scenario::ScenarioSpec& spec,
                               std::uint64_t save_epoch,
                               std::uint64_t resume_workers,
                               const std::string& tag) {
  const RunOutcome uninterrupted = run_to_completion(spec);

  const fs::path path = temp_snapshot_path(tag);
  {
    scenario::ScenarioRunner saver(spec);
    saver.set_epoch_callback(
        [&](const scenario::ScenarioRunner& at_epoch) {
          if (at_epoch.epoch() == save_epoch) {
            const auto status = snapshot::save_to_file(at_epoch, path.string());
            ASSERT_TRUE(status.is_ok()) << status.to_string();
          }
        });
    // Saving must not perturb the saving run itself.
    EXPECT_EQ(saver.run().to_json(), uninterrupted.report_json) << tag;
  }
  ASSERT_TRUE(fs::exists(path)) << tag << ": save_epoch " << save_epoch
                                << " never reached";

  auto resumed = snapshot::resume_from_file(path.string(), resume_workers);
  ASSERT_TRUE(resumed.is_ok()) << tag << ": " << resumed.status().to_string();
  scenario::ScenarioRunner& runner = *resumed.value();
  EXPECT_EQ(runner.epoch(), save_epoch) << tag;
  EXPECT_EQ(runner.run().to_json(), uninterrupted.report_json) << tag;
  EXPECT_EQ(snapshot::state_hash(runner), uninterrupted.state_hash) << tag;
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Round-trips across every shipped config shape
// ---------------------------------------------------------------------------

TEST(SnapshotRoundTrip, EveryShippedConfigAtSeveralEpochs) {
  const std::vector<fs::path> configs = shipped_configs();
  ASSERT_GE(configs.size(), 13u) << "configs/ directory not found or empty";
  for (const fs::path& config : configs) {
    const scenario::ScenarioSpec spec = shrunk_spec(config);
    const std::uint64_t epochs = total_epochs(spec);
    ASSERT_GE(epochs, 2u) << config;
    const std::string name = config.stem().string();
    // Early (mid-attack for adversary configs: start_epoch is shrunk to
    // ≤1) and late save points.
    expect_save_load_identity(spec, 2, 1, name + "_e2");
    expect_save_load_identity(spec, epochs - 1, 1, name + "_late");
  }
}

TEST(SnapshotRoundTrip, WorkerCountMayChangeAcrossResume) {
  // Resuming a serial run with 8 sweep workers (and vice versa) must not
  // perturb a single byte — the acceptance bar for `engine.workers` being
  // a pure throughput knob.
  for (const char* name : {"smoke.cfg", "colluding_pool.cfg"}) {
    scenario::ScenarioSpec spec =
        shrunk_spec(fs::path(FI_CONFIG_DIR) / name);
    expect_save_load_identity(spec, 3, 8, std::string("w8_") + name);
    spec.engine_workers = 8;
    expect_save_load_identity(spec, 3, 1, std::string("w1_") + name);
  }
}

TEST(SnapshotRoundTrip, PeriodicCheckpointsAllResume) {
  // checkpoint-every-N flavor: each overwrite is itself a valid resume
  // point; the last one written must resume to the identical report.
  scenario::ScenarioSpec spec =
      shrunk_spec(fs::path(FI_CONFIG_DIR) / "smoke.cfg");
  const RunOutcome uninterrupted = run_to_completion(spec);
  const fs::path path = temp_snapshot_path("periodic");
  std::uint64_t saves = 0;
  {
    scenario::ScenarioRunner saver(spec);
    saver.set_epoch_callback(
        [&](const scenario::ScenarioRunner& at_epoch) {
          if (at_epoch.epoch() % 2 == 0) {
            ASSERT_TRUE(
                snapshot::save_to_file(at_epoch, path.string()).is_ok());
            ++saves;
          }
        });
    (void)saver.run();
  }
  EXPECT_GE(saves, 2u);
  auto resumed = snapshot::resume_from_file(path.string());
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value()->run().to_json(), uninterrupted.report_json);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Rejection of bad snapshot files
// ---------------------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = shrunk_spec(fs::path(FI_CONFIG_DIR) / "smoke.cfg");
    // Per-test path: ctest runs each case as its own process, possibly in
    // parallel, and a shared file would race SetUp against TearDown.
    path_ = temp_snapshot_path(
        std::string("tamper_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    scenario::ScenarioRunner saver(spec_);
    saver.set_epoch_callback(
        [this](const scenario::ScenarioRunner& at_epoch) {
          if (at_epoch.epoch() == 2) {
            ASSERT_TRUE(
                snapshot::save_to_file(at_epoch, path_.string()).is_ok());
          }
        });
    (void)saver.run();
    ASSERT_TRUE(fs::exists(path_));
    std::ifstream in(path_, std::ios::binary);
    raw_.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }

  void TearDown() override { fs::remove(path_); }

  void write_raw(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  scenario::ScenarioSpec spec_;
  fs::path path_;
  std::vector<char> raw_;
};

TEST_F(SnapshotFileTest, IntactFileResumes) {
  EXPECT_TRUE(snapshot::resume_from_file(path_.string()).is_ok());
}

TEST_F(SnapshotFileTest, MissingFileIsRejected) {
  const auto result = snapshot::resume_from_file(path_.string() + ".nope");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), util::ErrorCode::not_found);
}

TEST_F(SnapshotFileTest, BadMagicIsRejected) {
  raw_[0] ^= 0x5a;
  write_raw(raw_);
  const auto result = snapshot::resume_from_file(path_.string());
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST_F(SnapshotFileTest, WrongVersionIsRejected) {
  raw_[8] = 99;  // version u32 follows the 8-byte magic
  write_raw(raw_);
  const auto result = snapshot::resume_from_file(path_.string());
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST_F(SnapshotFileTest, TruncationIsRejected) {
  for (const std::size_t keep :
       {raw_.size() - 1, raw_.size() / 2, std::size_t{40}, std::size_t{3}}) {
    std::vector<char> cut(raw_.begin(),
                          raw_.begin() + static_cast<std::ptrdiff_t>(keep));
    write_raw(cut);
    EXPECT_FALSE(snapshot::resume_from_file(path_.string()).is_ok())
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST_F(SnapshotFileTest, BodyCorruptionIsRejectedByDigest) {
  // Flip one bit in several body positions: the stored SHA-256 must catch
  // every one before deserialization begins.
  const std::size_t body_start = raw_.size() / 3;
  for (const std::size_t at :
       {body_start, raw_.size() / 2, raw_.size() - 9}) {
    std::vector<char> mutated = raw_;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x01);
    write_raw(mutated);
    const auto result = snapshot::resume_from_file(path_.string());
    EXPECT_FALSE(result.is_ok()) << "bit flip at " << at << " accepted";
  }
}

TEST_F(SnapshotFileTest, SpecTamperingIsRejectedByDigest) {
  // The embedded spec text is covered by the digest too: editing it (to
  // resume under different parameters) must fail loudly.
  const std::string needle = "seed";
  auto it = std::search(raw_.begin(), raw_.end(), needle.begin(), needle.end());
  ASSERT_NE(it, raw_.end());
  *it = 'q';
  write_raw(raw_);
  EXPECT_FALSE(snapshot::resume_from_file(path_.string()).is_ok());
}

TEST_F(SnapshotFileTest, StateHashIsWorkerAndHistoryInvariant) {
  // The same spec run to the same epoch has one canonical hash, no matter
  // the worker count: the property the golden-hash CI gate relies on.
  auto hash_at_epoch_2 = [this](std::uint64_t workers) {
    scenario::ScenarioSpec spec = spec_;
    spec.engine_workers = workers;
    std::string hash;
    scenario::ScenarioRunner runner(spec);
    runner.set_epoch_callback(
        [&hash](const scenario::ScenarioRunner& at_epoch) {
          if (at_epoch.epoch() == 2) hash = snapshot::state_hash(at_epoch);
        });
    (void)runner.run();
    return hash;
  };
  const std::string serial = hash_at_epoch_2(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.size(), 64u);
  EXPECT_EQ(hash_at_epoch_2(8), serial);
}

}  // namespace
}  // namespace fi
