// Adversary engine: adversary.<i>.* spec parsing/rejection/round-trips,
// per-strategy same-seed determinism and worker-count invariance of the
// serialized reports, and per-strategy outcome counters / attribution.

#include <string>

#include <gtest/gtest.h>

#include "adversary/spec.h"
#include "adversary/strategy.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/config.h"

namespace {

using fi::adversary::AdversarySpec;
using fi::adversary::StrategyKind;
using fi::scenario::AdversaryMetrics;
using fi::scenario::MetricsReport;
using fi::scenario::PhaseSpec;
using fi::scenario::ScenarioRunner;
using fi::scenario::ScenarioSpec;
using fi::util::Config;

// ---- Spec parsing ----------------------------------------------------------

TEST(AdversarySpecTest, StrategyNamesRoundTrip) {
  for (const StrategyKind kind :
       {StrategyKind::targeted_file, StrategyKind::colluding_pool,
        StrategyKind::proof_withholder, StrategyKind::churn_griefer,
        StrategyKind::adaptive_threshold, StrategyKind::refresh_saboteur}) {
    const auto parsed =
        fi::adversary::strategy_kind_from_name(strategy_kind_name(kind));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(fi::adversary::strategy_kind_from_name("meteor").is_ok());
}

ScenarioSpec adversary_base_spec() {
  ScenarioSpec spec;
  spec.name = "adv";
  spec.seed = 71;
  spec.sectors = 60;
  spec.sector_units = 4;
  spec.initial_files = 300;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.k = 3;
  spec.params.cap_para = 200.0;
  spec.params.gamma_deposit = 0.05;
  spec.params.avg_refresh = 5.0;
  spec.phases.push_back(PhaseSpec::make_idle(6));
  spec.phases.push_back(PhaseSpec::make_rent_audit(1));
  return spec;
}

TEST(AdversarySpecTest, ConfigRoundTripIsLosslessForEveryStrategy) {
  ScenarioSpec spec = adversary_base_spec();
  spec.adversaries.push_back(AdversarySpec::make_targeted_file(2, 40, 1));
  spec.adversaries.push_back(AdversarySpec::make_colluding_pool(0.25, 3, 2));
  spec.adversaries.push_back(
      AdversarySpec::make_proof_withholder(0.125, 100, 1));
  spec.adversaries.push_back(AdversarySpec::make_churn_griefer(5, 2, 1));
  spec.adversaries.push_back(
      AdversarySpec::make_adaptive_threshold(1000, 1, 2, 0));
  spec.adversaries.push_back(AdversarySpec::make_refresh_saboteur(0.5, 4, 1));
  spec.adversaries.back().label = "saboteur-A";

  const std::string text = spec.to_config_string();
  const auto config = Config::parse(text);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  const auto reparsed = ScenarioSpec::from_config(config.value());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().to_config_string(), text);
  ASSERT_EQ(reparsed.value().adversaries.size(), 6u);
  EXPECT_EQ(reparsed.value().adversaries[0].kind, StrategyKind::targeted_file);
  EXPECT_EQ(reparsed.value().adversaries[0].budget, 40u);
  EXPECT_DOUBLE_EQ(reparsed.value().adversaries[1].fraction, 0.25);
  EXPECT_EQ(reparsed.value().adversaries[2].saved_per_cycle, 100u);
  EXPECT_EQ(reparsed.value().adversaries[3].period, 2u);
  EXPECT_EQ(reparsed.value().adversaries[4].penalty_budget, 1000u);
  EXPECT_EQ(reparsed.value().adversaries[5].label, "saboteur-A");
}

void expect_rejected(const std::string& text) {
  const auto config = Config::parse(text);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_FALSE(ScenarioSpec::from_config(config.value()).is_ok())
      << "config unexpectedly accepted:\n"
      << text;
}

TEST(AdversarySpecTest, RejectsMalformedBlocks) {
  const std::string base = "sectors = 10\n";
  // Unknown strategy.
  expect_rejected(base + "adversary.0.strategy = meteor_strike\n");
  // Knob the strategy does not take.
  expect_rejected(base +
                  "adversary.0.strategy = targeted_file\n"
                  "adversary.0.fraction = 0.5\n");
  expect_rejected(base +
                  "adversary.0.strategy = colluding_pool\n"
                  "adversary.0.fraction = 0.5\n"
                  "adversary.0.budget = 3\n");
  // Missing required knobs.
  expect_rejected(base + "adversary.0.strategy = proof_withholder\n"
                         "adversary.0.fraction = 0.5\n");  // no saved_per_cycle
  expect_rejected(base + "adversary.0.strategy = churn_griefer\n");  // sectors
  expect_rejected(base +
                  "adversary.0.strategy = adaptive_threshold\n");  // budget
  // Fractions out of range (including NaN, which passes naive checks).
  expect_rejected(base +
                  "adversary.0.strategy = refresh_saboteur\n"
                  "adversary.0.fraction = 1.5\n");
  expect_rejected(base +
                  "adversary.0.strategy = refresh_saboteur\n"
                  "adversary.0.fraction = nan\n");
  expect_rejected(base +
                  "adversary.0.strategy = colluding_pool\n"
                  "adversary.0.fraction = 0\n");  // zero members: no-op spec
  // Block indices must start at 0 with no gaps (the orphan block is
  // caught by the unknown-key sweep).
  expect_rejected(base + "adversary.1.strategy = targeted_file\n");
  // Type errors inside a known key.
  expect_rejected(base +
                  "adversary.0.strategy = targeted_file\n"
                  "adversary.0.sectors_per_epoch = many\n");
}

TEST(AdversarySpecTest, ValidateRejectsWrongKindKnobsOnInCodeSpecs) {
  ScenarioSpec spec = adversary_base_spec();
  spec.adversaries.push_back(AdversarySpec::make_targeted_file(2));
  spec.adversaries.back().fraction = 0.5;  // not a targeted_file knob
  EXPECT_FALSE(spec.validate().is_ok());

  spec.adversaries.back() = AdversarySpec::make_churn_griefer(0);  // sectors=0
  EXPECT_FALSE(spec.validate().is_ok());

  spec.adversaries.back() = AdversarySpec::make_churn_griefer(5);
  EXPECT_TRUE(spec.validate().is_ok());
}

// ---- Determinism -----------------------------------------------------------

ScenarioSpec strategy_spec(StrategyKind kind, std::uint64_t workers) {
  ScenarioSpec spec = adversary_base_spec();
  spec.engine_workers = workers;
  switch (kind) {
    case StrategyKind::targeted_file:
      spec.adversaries.push_back(AdversarySpec::make_targeted_file(2, 0, 1));
      break;
    case StrategyKind::colluding_pool:
      spec.adversaries.push_back(
          AdversarySpec::make_colluding_pool(0.2, 2, 1));
      break;
    case StrategyKind::proof_withholder:
      spec.adversaries.push_back(
          AdversarySpec::make_proof_withholder(0.25, 100, 1));
      break;
    case StrategyKind::churn_griefer:
      spec.adversaries.push_back(AdversarySpec::make_churn_griefer(6, 2, 1));
      break;
    case StrategyKind::adaptive_threshold:
      spec.adversaries.push_back(
          AdversarySpec::make_adaptive_threshold(2000, 1, 2, 1));
      break;
    case StrategyKind::refresh_saboteur:
      spec.adversaries.push_back(
          AdversarySpec::make_refresh_saboteur(0.3, 3, 1));
      break;
    case StrategyKind::retrieval_ddos:
      // Exercised in depth by traffic_test.cpp; here just a valid spec.
      spec.traffic.enabled = true;
      spec.traffic.requests_per_cycle = 16;
      spec.traffic.streams = 4;
      spec.adversaries.push_back(AdversarySpec::make_retrieval_ddos(20, 2, 1));
      break;
    case StrategyKind::cartel_starver:
      spec.traffic.enabled = true;
      spec.traffic.requests_per_cycle = 16;
      spec.traffic.streams = 4;
      spec.adversaries.push_back(AdversarySpec::make_cartel_starver(0.3, 0, 1));
      break;
  }
  return spec;
}

TEST(AdversaryDeterminismTest, SameSeedAndWorkerCountsAreByteIdentical) {
  for (const StrategyKind kind :
       {StrategyKind::targeted_file, StrategyKind::colluding_pool,
        StrategyKind::proof_withholder, StrategyKind::churn_griefer,
        StrategyKind::adaptive_threshold, StrategyKind::refresh_saboteur}) {
    ScenarioRunner serial(strategy_spec(kind, 1));
    const std::string reference = serial.run().to_json(false);
    ASSERT_FALSE(reference.empty());
    EXPECT_NE(reference.find("\"adversaries\""), std::string::npos);
    EXPECT_NE(reference.find("\"rent_conserved\": true"), std::string::npos)
        << strategy_kind_name(kind);

    ScenarioRunner repeat(strategy_spec(kind, 1));
    EXPECT_EQ(reference, repeat.run().to_json(false))
        << "same-seed drift for " << strategy_kind_name(kind);

    ScenarioRunner parallel(strategy_spec(kind, 8));
    EXPECT_EQ(reference, parallel.run().to_json(false))
        << "worker drift for " << strategy_kind_name(kind);
  }
}

// ---- Outcome counters and attribution --------------------------------------

const AdversaryMetrics& single_adversary(const MetricsReport& report) {
  EXPECT_EQ(report.adversaries.size(), 1u);
  return report.adversaries.front();
}

TEST(AdversaryCountersTest, TargetedFileAttacksAndAttributes) {
  ScenarioRunner runner(strategy_spec(StrategyKind::targeted_file, 1));
  const MetricsReport report = runner.run();
  const AdversaryMetrics& adv = single_adversary(report);
  EXPECT_EQ(adv.strategy, "targeted_file");
  EXPECT_GT(adv.counters.sectors_corrupted, 0u);
  EXPECT_GT(adv.counters.replicas_attacked, 0u);
  EXPECT_GT(adv.counters.deposits_confiscated, 0u);
  // Every strategy corruption is visible in the engine totals.
  EXPECT_LE(adv.counters.sectors_corrupted, report.totals.sectors_corrupted);
  EXPECT_LE(adv.counters.files_lost, report.totals.files_lost);
  EXPECT_LE(adv.counters.compensation_paid, report.totals.value_compensated);
  // The strategy reports its target.
  bool has_target = false;
  for (const auto& [name, value] : adv.counters.extras) {
    if (name == "target_file") has_target = value >= 0.0;
  }
  EXPECT_TRUE(has_target);
}

TEST(AdversaryCountersTest, ProofWithholderPaysPenaltiesButKeepsDeposits) {
  ScenarioRunner runner(strategy_spec(StrategyKind::proof_withholder, 1));
  const MetricsReport report = runner.run();
  const AdversaryMetrics& adv = single_adversary(report);
  EXPECT_GT(adv.counters.proofs_withheld, 0u);
  EXPECT_GT(adv.counters.penalties_paid, 0u);
  // The whole point: it skates below ProofDeadline, so nothing is ever
  // confiscated and no file is lost.
  EXPECT_EQ(adv.counters.deposits_confiscated, 0u);
  EXPECT_EQ(report.totals.sectors_corrupted, 0u);
  EXPECT_EQ(report.totals.files_lost, 0u);
  EXPECT_TRUE(report.rent_conserved);
}

TEST(AdversaryCountersTest, ChurnGrieferCyclesItsFleet) {
  ScenarioRunner runner(strategy_spec(StrategyKind::churn_griefer, 1));
  const MetricsReport report = runner.run();
  const AdversaryMetrics& adv = single_adversary(report);
  EXPECT_GE(adv.counters.sectors_joined, 6u);   // at least the initial fleet
  EXPECT_GT(adv.counters.sectors_exited, 0u);
  EXPECT_EQ(report.totals.files_lost, 0u);  // griefing must not lose data
  EXPECT_TRUE(report.rent_conserved);
}

TEST(AdversaryCountersTest, RefreshSaboteurRefusesAndStops) {
  ScenarioRunner runner(strategy_spec(StrategyKind::refresh_saboteur, 1));
  const MetricsReport report = runner.run();
  const AdversaryMetrics& adv = single_adversary(report);
  EXPECT_GT(adv.counters.transfers_refused, 0u);
  EXPECT_GT(adv.counters.penalties_paid, 0u);
  EXPECT_GT(report.totals.refreshes_failed, 0u);
  EXPECT_EQ(report.totals.files_lost, 0u);  // sabotage delays, never destroys
}

TEST(AdversaryCountersTest, AdaptiveThresholdGoesDormantUnderBudget) {
  ScenarioRunner runner(strategy_spec(StrategyKind::adaptive_threshold, 1));
  const MetricsReport report = runner.run();
  const AdversaryMetrics& adv = single_adversary(report);
  EXPECT_GT(adv.counters.sectors_corrupted, 0u);
  double went_dormant = -1.0;
  for (const auto& [name, value] : adv.counters.extras) {
    if (name == "went_dormant") went_dormant = value;
  }
  // Budget 2000 vs 1600-token deposits: it must stop after the first few
  // confiscations.
  EXPECT_EQ(went_dormant, 1.0);
  EXPECT_GE(adv.counters.deposits_confiscated, 2000u);
}

TEST(AdversaryCountersTest, ReportOmitsAdversariesWhenNoneConfigured) {
  ScenarioSpec spec = adversary_base_spec();
  ScenarioRunner runner(std::move(spec));
  const std::string json = runner.run().to_json(false);
  EXPECT_EQ(json.find("\"adversaries\""), std::string::npos);
}

}  // namespace
