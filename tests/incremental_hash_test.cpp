// Incremental state-hash invariants (src/snapshot/incremental_hash.h):
//
//   1. After EVERY mutation, the cached O(changed-state) fingerprint equals
//      a from-scratch recompute — version counters never miss a mutation.
//   2. The refresh really is O(delta): an unchanged network re-hashes zero
//      components, a localized mutation re-hashes only the touched ones.
//   3. A resumed snapshot reproduces the original run's subtree digests
//      component for component.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "core/network.h"
#include "ledger/account.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "snapshot/incremental_hash.h"
#include "snapshot/snapshot.h"
#include "util/config.h"

namespace fi {
namespace {

namespace fs = std::filesystem;

using core::Network;
using snapshot::IncrementalNetworkHasher;

// ---------------------------------------------------------------------------
// Direct engine driving: invariant after every mutation
// ---------------------------------------------------------------------------

class IncrementalHashFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    core::Params p;
    p.min_capacity = 1024;
    p.min_value = 10;
    p.k = 2;
    p.cap_para = 10.0;
    p.gamma_deposit = 0.5;
    p.proof_cycle = 100;
    p.proof_due = 150;
    p.proof_deadline = 300;
    p.avg_refresh = 1000.0;
    p.verify_proofs = false;
    p.cr_size = 256;
    params = p;
    net = std::make_unique<Network>(p, ledger, /*seed=*/7);
    client = ledger.create_account(1'000'000);
    for (int i = 0; i < 4; ++i) {
      providers.push_back(ledger.create_account(1'000'000));
    }
  }

  /// The headline invariant, checked after every mutation step below.
  void expect_incremental_matches_full(const char* at) {
    EXPECT_EQ(hasher.fingerprint(*net),
              IncrementalNetworkHasher::full_fingerprint(*net))
        << "incremental fingerprint diverged after: " << at;
  }

  void confirm_all(core::FileId file) {
    for (core::ReplicaIndex i = 0;
         i < net->allocations().replica_count(file); ++i) {
      const core::AllocEntry e = net->allocations().entry(file, i);
      if (e.state != core::AllocState::alloc || e.next == core::kNoSector) {
        continue;
      }
      const core::ProviderId owner = net->sectors().at(e.next).owner;
      ASSERT_TRUE(
          net->file_confirm(owner, file, i, e.next, {}, std::nullopt).is_ok());
    }
  }

  core::Params params;
  ledger::Ledger ledger;
  std::unique_ptr<Network> net;
  core::ClientId client = kNoAccount;
  std::vector<core::ProviderId> providers;
  IncrementalNetworkHasher hasher;
};

TEST_F(IncrementalHashFixture, InvariantHoldsAfterEveryMutation) {
  expect_incremental_matches_full("construction");

  std::vector<core::SectorId> sectors;
  for (const core::ProviderId p : providers) {
    auto id = net->sector_register(p, 4 * 1024);
    ASSERT_TRUE(id.is_ok());
    sectors.push_back(id.value());
    expect_incremental_matches_full("sector_register");
  }

  auto file = net->file_add(client, {1000, 20, {}});
  ASSERT_TRUE(file.is_ok());
  expect_incremental_matches_full("file_add");

  confirm_all(file.value());
  expect_incremental_matches_full("file_confirm");

  net->advance_to(net->now() + params.transfer_window(1000));
  expect_incremental_matches_full("advance_to (check_alloc)");
  ASSERT_TRUE(net->file_exists(file.value()));

  net->advance_to(net->now() + 5 * params.proof_cycle);
  expect_incremental_matches_full("advance_to (proof cycles)");

  net->corrupt_sector_physical(sectors[0]);
  expect_incremental_matches_full("corrupt_sector_physical");

  net->restore_sector_physical(sectors[0]);
  expect_incremental_matches_full("restore_sector_physical");

  net->corrupt_sector_now(sectors[1]);
  expect_incremental_matches_full("corrupt_sector_now");

  net->settle_all_rent();
  expect_incremental_matches_full("settle_all_rent");

  // The corruptions above may already have cost the file its replicas;
  // get/discard still mutate state (rng draws, stats, escrow) when they
  // run, and the invariant must hold either way.
  if (net->file_exists(file.value())) {
    ASSERT_TRUE(net->file_get(client, file.value()).is_ok());
    expect_incremental_matches_full("file_get");

    ASSERT_TRUE(net->file_discard(client, file.value()).is_ok());
    expect_incremental_matches_full("file_discard");
  }

  // May be rejected (the sector can still host replicas); a rejected
  // request must leave the fingerprint coherent too.
  (void)net->sector_disable(net->sectors().at(sectors[2]).owner, sectors[2]);
  expect_incremental_matches_full("sector_disable");
}

TEST_F(IncrementalHashFixture, RefreshCountIsProportionalToChange) {
  for (const core::ProviderId p : providers) {
    ASSERT_TRUE(net->sector_register(p, 4 * 1024).is_ok());
  }
  auto file = net->file_add(client, {1000, 20, {}});
  ASSERT_TRUE(file.is_ok());
  confirm_all(file.value());
  net->advance_to(net->now() + params.transfer_window(1000));

  // First fingerprint hashes all six components.
  hasher.fingerprint(*net);
  EXPECT_EQ(hasher.last_refresh_count(), Network::kStateComponentCount);

  // No mutation: everything served from cache.
  hasher.fingerprint(*net);
  EXPECT_EQ(hasher.last_refresh_count(), 0u);

  // A physical corruption only flips a misc-component flag: exactly one
  // component re-hashes.
  net->corrupt_sector_physical(1);
  hasher.fingerprint(*net);
  EXPECT_EQ(hasher.last_refresh_count(), 1u);

  // And the fingerprint still matches the from-scratch oracle.
  EXPECT_EQ(hasher.fingerprint(*net),
            IncrementalNetworkHasher::full_fingerprint(*net));
}

TEST_F(IncrementalHashFixture, ComponentDigestsDistinguishComponents) {
  for (const core::ProviderId p : providers) {
    ASSERT_TRUE(net->sector_register(p, 4 * 1024).is_ok());
  }
  hasher.fingerprint(*net);
  // Six live subtree digests, pairwise distinct (the component index is
  // folded into each digest, so even empty components differ).
  for (std::size_t a = 0; a < Network::kStateComponentCount; ++a) {
    for (std::size_t b = a + 1; b < Network::kStateComponentCount; ++b) {
      EXPECT_NE(hasher.component_digest(
                    static_cast<Network::StateComponent>(a)),
                hasher.component_digest(
                    static_cast<Network::StateComponent>(b)))
          << "components " << a << " and " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario runner: invariant across epochs, and across save/resume
// ---------------------------------------------------------------------------

scenario::ScenarioSpec small_spec() {
  auto config = util::Config::load(std::string(FI_CONFIG_DIR) + "/smoke.cfg");
  EXPECT_TRUE(config.is_ok()) << config.status().to_string();
  auto parsed = scenario::ScenarioSpec::from_config(config.value());
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  scenario::ScenarioSpec spec = std::move(parsed).value();
  spec.sectors = std::min<std::uint64_t>(spec.sectors, 60);
  spec.initial_files = std::min<std::uint64_t>(spec.initial_files, 80);
  for (scenario::PhaseSpec& phase : spec.phases) {
    phase.cycles = std::min<std::uint64_t>(phase.cycles, 6);
    phase.periods = std::min<std::uint64_t>(phase.periods, 1);
    phase.adds_per_cycle = std::min<std::uint64_t>(phase.adds_per_cycle, 6);
  }
  return spec;
}

TEST(IncrementalHashRunner, InvariantHoldsAtEveryEpochCheckpoint) {
  // The epoch callback is the checkpoint-safe point the snapshot layer
  // hooks; a persistent hasher there exercises the version counters across
  // full proof-cycle batches, including the parallel sweep's merge-point
  // version notes.
  scenario::ScenarioSpec spec = small_spec();
  spec.engine_workers = 4;
  scenario::ScenarioRunner runner(std::move(spec));
  IncrementalNetworkHasher hasher;
  std::uint64_t checkpoints = 0;
  runner.set_epoch_callback([&](const scenario::ScenarioRunner& at_epoch) {
    ++checkpoints;
    ASSERT_EQ(hasher.fingerprint(at_epoch.network()),
              IncrementalNetworkHasher::full_fingerprint(at_epoch.network()))
        << "epoch " << at_epoch.epoch();
  });
  runner.run();
  EXPECT_GE(checkpoints, 5u);
}

TEST(IncrementalHashRunner, ResumedSnapshotReproducesSubtreeDigests) {
  const scenario::ScenarioSpec spec = small_spec();

  // Uninterrupted run to completion.
  scenario::ScenarioRunner full(spec);
  full.run();
  IncrementalNetworkHasher full_hasher;
  const crypto::Hash256 full_root = full_hasher.fingerprint(full.network());

  // Save mid-run, resume, finish.
  const fs::path path =
      fs::path(::testing::TempDir()) / "fi_incremental_hash.fisnap";
  {
    scenario::ScenarioRunner saver(spec);
    saver.set_epoch_callback([&](const scenario::ScenarioRunner& at_epoch) {
      if (at_epoch.epoch() == 3) {
        ASSERT_TRUE(
            snapshot::save_to_file(at_epoch, path.string()).is_ok());
      }
    });
    saver.run();
  }
  ASSERT_TRUE(fs::exists(path));
  auto resumed = snapshot::resume_from_file(path.string());
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  resumed.value()->run();

  // The resumed run must land on the identical per-component subtree
  // digests — not just the same root.
  IncrementalNetworkHasher resumed_hasher;
  EXPECT_EQ(resumed_hasher.fingerprint(resumed.value()->network()),
            full_root);
  for (std::size_t c = 0; c < Network::kStateComponentCount; ++c) {
    const auto component = static_cast<Network::StateComponent>(c);
    EXPECT_EQ(resumed_hasher.component_digest(component),
              full_hasher.component_digest(component))
        << Network::state_component_name(component);
  }
  fs::remove(path);
}

}  // namespace
}  // namespace fi
