#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "core/drep.h"
#include "core/network.h"
#include "crypto/merkle.h"
#include "crypto/porep.h"
#include "ledger/account.h"
#include "util/fenwick.h"
#include "util/prng.h"

/// Property-style suites: parameterized sweeps asserting invariants across
/// randomized inputs rather than single examples.
namespace fi {
namespace {

// ---------------------------------------------------------------------------
// Fenwick tree vs a naive reference, across sizes
// ---------------------------------------------------------------------------

class FenwickProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FenwickProperty, MatchesNaiveReferenceUnderRandomOps) {
  const std::size_t n = GetParam();
  util::Xoshiro256 rng(n * 1337 + 1);
  util::FenwickTree tree(n);
  std::vector<std::uint64_t> naive(n, 0);
  for (int op = 0; op < 2000; ++op) {
    const std::size_t i = rng.uniform_below(n);
    const std::uint64_t w = rng.uniform_below(50);
    tree.set(i, w);
    naive[i] = w;
    // Invariants: total, random prefix, and sampled slot has weight > 0.
    std::uint64_t total = 0;
    for (std::uint64_t x : naive) total += x;
    ASSERT_EQ(tree.total(), total);
    const std::size_t q = rng.uniform_below(n + 1);
    std::uint64_t prefix = 0;
    for (std::size_t j = 0; j < q; ++j) prefix += naive[j];
    ASSERT_EQ(tree.prefix_sum(q), prefix);
    if (total > 0) {
      ASSERT_GT(naive[tree.sample(rng)], 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FenwickProperty,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 64, 100, 257));

// ---------------------------------------------------------------------------
// Merkle proofs across random data sizes
// ---------------------------------------------------------------------------

class MerkleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MerkleProperty, AllProofsVerifyAndCrossProofsFail) {
  util::Xoshiro256 rng(GetParam());
  const std::size_t size = 1 + rng.uniform_below(8000);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const crypto::MerkleTree tree = crypto::MerkleTree::over_data(data);
  for (std::uint64_t i = 0; i < tree.leaf_count(); ++i) {
    const auto proof = tree.prove(i);
    ASSERT_TRUE(crypto::merkle_verify(tree.root(), tree.leaf(i), proof));
    // A proof for leaf i never verifies another leaf's hash.
    if (tree.leaf_count() > 1) {
      const std::uint64_t other = (i + 1) % tree.leaf_count();
      if (tree.leaf(other) != tree.leaf(i)) {
        ASSERT_FALSE(
            crypto::merkle_verify(tree.root(), tree.leaf(other), proof));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerkleProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// PoRep round trip across (size, work) shapes
// ---------------------------------------------------------------------------

class PoRepProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint32_t>> {
};

TEST_P(PoRepProperty, SealUnsealProveVerify) {
  const auto [size, work] = GetParam();
  const crypto::SealParams params{.work = work, .challenges = 3};
  util::Xoshiro256 rng(size * 31 + work);
  std::vector<std::uint8_t> raw(size);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng());
  const crypto::ReplicaId id{rng(), rng(), rng()};
  const auto sealed = crypto::seal(raw, id, params);
  ASSERT_EQ(crypto::unseal(sealed, id, params), raw);
  const auto proof = crypto::prove_seal(raw, sealed, id, params);
  ASSERT_TRUE(crypto::verify_seal(proof, params));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoRepProperty,
    ::testing::Combine(::testing::Values(1, 64, 65, 777, 4096),
                       ::testing::Values(1u, 4u)));

// ---------------------------------------------------------------------------
// DRep invariant under random replica churn
// ---------------------------------------------------------------------------

class DRepProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DRepProperty, InvariantHoldsUnderChurn) {
  util::Xoshiro256 rng(GetParam());
  const ByteCount cr = 128;
  const ByteCount capacity = cr * (4 + rng.uniform_below(20));
  core::DRepManager drep(1, 1, capacity, cr, {}, false);
  std::map<std::uint64_t, ByteCount> live;
  std::uint64_t next_key = 0;
  for (int op = 0; op < 500; ++op) {
    const bool add = live.empty() || rng.uniform_below(2) == 0;
    if (add) {
      const ByteCount size = 1 + rng.uniform_below(cr * 2);
      if (drep.used_by_files() + size > capacity) continue;
      drep.add_replica(next_key, size);
      live[next_key++] = size;
    } else {
      auto it = live.begin();
      std::advance(it, rng.uniform_below(live.size()));
      drep.remove_replica(it->first);
      live.erase(it);
    }
    // Paper invariant: unsealed space < one CR; CR count is maximal.
    ASSERT_TRUE(drep.invariant_holds());
    const ByteCount free_space = capacity - drep.used_by_files();
    ASSERT_EQ(drep.cr_count(), free_space / cr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DRepProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Protocol fuzz: random operation sequences preserve global invariants
// ---------------------------------------------------------------------------

class ProtocolFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static core::Params fuzz_params() {
    core::Params p;
    p.min_capacity = 1024;
    p.min_value = 10;
    p.k = 2;
    p.cap_para = 10.0;
    p.gamma_deposit = 0.2;
    p.proof_cycle = 50;
    p.proof_due = 75;
    p.proof_deadline = 150;
    p.avg_refresh = 3.0;  // busy refresh traffic
    p.verify_proofs = false;
    p.cr_size = 256;
    return p;
  }
};

TEST_P(ProtocolFuzz, InvariantsHoldUnderRandomOperations) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed);
  ledger::Ledger ledger;
  const core::Params params = fuzz_params();
  core::Network net(params, ledger, seed);
  net.set_auto_prove(true);

  std::vector<AccountId> clients, providers;
  std::vector<core::SectorId> sectors;
  std::vector<core::FileId> files;
  for (int i = 0; i < 3; ++i) clients.push_back(ledger.create_account(500'000));
  for (int i = 0; i < 4; ++i) {
    providers.push_back(ledger.create_account(500'000));
    auto s = net.sector_register(providers.back(), 8 * 1024);
    ASSERT_TRUE(s.is_ok());
    sectors.push_back(s.value());
  }
  const TokenAmount initial_supply = ledger.total_supply();

  auto confirm_everything = [&] {
    for (core::FileId f : files) {
      if (!net.file_exists(f)) continue;
      for (core::ReplicaIndex i = 0;
           i < net.allocations().replica_count(f); ++i) {
        const core::AllocEntry& e = net.allocations().entry(f, i);
        if (e.state == core::AllocState::alloc && e.next != core::kNoSector &&
            rng.uniform_below(10) < 9) {
          const AccountId owner = net.sectors().at(e.next).owner;
          (void)net.file_confirm(owner, f, i, e.next, {}, std::nullopt);
        }
      }
    }
  };

  for (int step = 0; step < 300; ++step) {
    switch (rng.uniform_below(10)) {
      case 0:
      case 1:
      case 2: {  // add a file
        const ByteCount size = 100 + rng.uniform_below(900);
        const TokenAmount value = 10 * (1 + rng.uniform_below(3));
        const AccountId client = clients[rng.uniform_below(clients.size())];
        auto f = net.file_add(client, {size, value, {}});
        if (f.is_ok()) files.push_back(f.value());
        break;
      }
      case 3: {  // discard a file
        if (!files.empty()) {
          const core::FileId f = files[rng.uniform_below(files.size())];
          if (net.file_exists(f)) {
            (void)net.file_discard(net.file_owner(f), f);
          }
        }
        break;
      }
      case 4: {  // register another sector
        const AccountId p = providers[rng.uniform_below(providers.size())];
        auto s = net.sector_register(p, 1024 * (1 + rng.uniform_below(8)));
        if (s.is_ok()) sectors.push_back(s.value());
        break;
      }
      case 5: {  // disable a sector
        const core::SectorId s = sectors[rng.uniform_below(sectors.size())];
        (void)net.sector_disable(net.sectors().at(s).owner, s);
        break;
      }
      case 6: {  // corrupt a sector (rarely)
        if (rng.uniform_below(4) == 0) {
          const core::SectorId s = sectors[rng.uniform_below(sectors.size())];
          if (net.sectors().at(s).state == core::SectorState::normal) {
            net.corrupt_sector_now(s);
          }
        }
        break;
      }
      default: {  // let time pass and play honest provider
        confirm_everything();
        net.advance(1 + rng.uniform_below(60));
        confirm_everything();
        break;
      }
    }

    // ---- Invariants, checked continuously -----------------------------
    // 1. Money is conserved.
    ASSERT_EQ(ledger.total_supply(), initial_supply);

    // 2. Sector space accounting: used == sum of entry footprints.
    std::map<core::SectorId, ByteCount> expected_use;
    for (core::FileId f : files) {
      if (!net.file_exists(f)) continue;
      const ByteCount size = net.file(f).size;
      for (core::ReplicaIndex i = 0;
           i < net.allocations().replica_count(f); ++i) {
        const core::AllocEntry& e = net.allocations().entry(f, i);
        if (e.prev != core::kNoSector &&
            e.state != core::AllocState::corrupted) {
          expected_use[e.prev] += size;
        }
        if (e.next != core::kNoSector) expected_use[e.next] += size;
      }
    }
    for (core::SectorId s : sectors) {
      const core::Sector& sec = net.sectors().at(s);
      if (sec.state == core::SectorState::corrupted ||
          sec.state == core::SectorState::removed) {
        continue;
      }
      ASSERT_EQ(sec.capacity - sec.free_cap, expected_use[s])
          << "sector " << s << " step " << step << " seed " << seed;
    }

    // 3. Reference counts match link counts.
    std::map<core::SectorId, std::uint32_t> expected_refs;
    for (core::FileId f : files) {
      if (!net.file_exists(f)) continue;
      for (core::ReplicaIndex i = 0;
           i < net.allocations().replica_count(f); ++i) {
        const core::AllocEntry& e = net.allocations().entry(f, i);
        if (e.prev != core::kNoSector) ++expected_refs[e.prev];
        if (e.next != core::kNoSector) ++expected_refs[e.next];
      }
    }
    for (core::SectorId s : sectors) {
      ASSERT_EQ(net.sectors().at(s).ref_count, expected_refs[s])
          << "sector " << s << " step " << step << " seed " << seed;
    }

    // 4. Deposit escrow equals the sum of per-sector remainders.
    TokenAmount total_deposits = 0;
    for (core::SectorId s : sectors) {
      total_deposits += net.deposits().remaining(s);
    }
    ASSERT_EQ(net.deposits().escrow_balance(), total_deposits);
  }

  // Losses (if any) were compensated up to pool capacity.
  const auto& stats = net.stats();
  if (stats.files_lost > 0) {
    EXPECT_GT(stats.value_compensated + net.deposits().outstanding_liabilities(),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace fi
