#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/network.h"

namespace fi::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, StableOrderWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  q.schedule_at(30, [&] { ++ran; });
  q.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const auto id = q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(10, [&] { ++ran; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<Time> fire_times;
  std::function<void()> recurring = [&] {
    fire_times.push_back(q.now());
    if (fire_times.size() < 5) q.schedule_after(10, recurring);
  };
  q.schedule_at(0, recurring);
  q.run_all();
  EXPECT_EQ(fire_times, (std::vector<Time>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), util::InvariantViolation);
}

TEST(EventQueue, NextEventTimeSkipsCancelled) {
  EventQueue q;
  const auto id = q.schedule_at(5, [] {});
  q.schedule_at(9, [] {});
  EXPECT_EQ(q.next_event_time(), 5u);
  q.cancel(id);
  EXPECT_EQ(q.next_event_time(), 9u);
}

TEST(EventQueue, RunAllGuardsAgainstRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(1, forever); };
  q.schedule_at(0, forever);
  EXPECT_THROW(q.run_all(1000), util::InvariantViolation);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

struct Inbox {
  std::vector<Message> messages;
  Network::Handler handler() {
    return [this](const Message& m) { messages.push_back(m); };
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 7, .ticks_per_kib = 0});
  net.send({na, nb, "ping", {}, 1});
  q.run_all();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].kind, "ping");
  EXPECT_EQ(q.now(), 7u);
}

TEST(SimNetwork, BandwidthScalesWithPayload) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 1, .ticks_per_kib = 2});
  net.send({na, nb, "data", std::vector<std::uint8_t>(4096, 0), 1});
  q.run_all();
  EXPECT_EQ(q.now(), 1u + 2u * 4u);
}

TEST(SimNetwork, PerLinkProfileOverridesDefault) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 100, .ticks_per_kib = 0});
  net.set_link(na, nb, {.base_latency = 3, .ticks_per_kib = 0});
  net.send({na, nb, "fast", {}, 1});
  q.run_all();
  EXPECT_EQ(q.now(), 3u);
}

TEST(SimNetwork, DownNodeDropsTraffic) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_node_down(nb, true);
  net.send({na, nb, "lost", {}, 1});
  q.run_all();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_node_down(nb, false);
  net.send({na, nb, "found", {}, 2});
  q.run_all();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(SimNetwork, CrashAfterSendDropsInFlight) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 10, .ticks_per_kib = 0});
  net.send({na, nb, "in-flight", {}, 1});
  net.set_node_down(nb, true);  // crashes before delivery
  q.run_all();
  EXPECT_TRUE(b.messages.empty());
}

TEST(SimNetwork, LossyLinkDropsApproximatelyAtRate) {
  EventQueue q;
  Network net(q, 99);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link(
      {.base_latency = 1, .ticks_per_kib = 0, .drop_probability = 0.3});
  for (int i = 0; i < 2000; ++i) {
    net.send({na, nb, "maybe", {}, static_cast<std::uint64_t>(i)});
  }
  q.run_all();
  EXPECT_NEAR(static_cast<double>(b.messages.size()) / 2000.0, 0.7, 0.04);
}

}  // namespace
}  // namespace fi::sim
