#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/runner.h"
#include "scenario/spec.h"
#include "sim/event_queue.h"
#include "sim/net_model.h"
#include "sim/network.h"
#include "snapshot/snapshot.h"
#include "util/binary_io.h"

namespace fi::sim {
namespace {

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, StableOrderWithinTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(20, [&] { ++ran; });
  q.schedule_at(30, [&] { ++ran; });
  q.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const auto id = q.schedule_at(10, [&] { ++ran; });
  q.schedule_at(10, [&] { ++ran; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already cancelled
  q.run_all();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<Time> fire_times;
  std::function<void()> recurring = [&] {
    fire_times.push_back(q.now());
    if (fire_times.size() < 5) q.schedule_after(10, recurring);
  };
  q.schedule_at(0, recurring);
  q.run_all();
  EXPECT_EQ(fire_times, (std::vector<Time>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(5, [] {}), util::InvariantViolation);
}

TEST(EventQueue, NextEventTimeSkipsCancelled) {
  EventQueue q;
  const auto id = q.schedule_at(5, [] {});
  q.schedule_at(9, [] {});
  EXPECT_EQ(q.next_event_time(), 5u);
  q.cancel(id);
  EXPECT_EQ(q.next_event_time(), 9u);
}

TEST(EventQueue, RunAllGuardsAgainstRunaway) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(1, forever); };
  q.schedule_at(0, forever);
  EXPECT_THROW(q.run_all(1000), util::InvariantViolation);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

struct Inbox {
  std::vector<Message> messages;
  Network::Handler handler() {
    return [this](const Message& m) { messages.push_back(m); };
  }
};

TEST(SimNetwork, DeliversWithLatency) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 7, .ticks_per_kib = 0});
  net.send({na, nb, "ping", {}, 1});
  q.run_all();
  ASSERT_EQ(b.messages.size(), 1u);
  EXPECT_EQ(b.messages[0].kind, "ping");
  EXPECT_EQ(q.now(), 7u);
}

TEST(SimNetwork, BandwidthScalesWithPayload) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 1, .ticks_per_kib = 2});
  net.send({na, nb, "data", std::vector<std::uint8_t>(4096, 0), 1});
  q.run_all();
  EXPECT_EQ(q.now(), 1u + 2u * 4u);
}

TEST(SimNetwork, PerLinkProfileOverridesDefault) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 100, .ticks_per_kib = 0});
  net.set_link(na, nb, {.base_latency = 3, .ticks_per_kib = 0});
  net.send({na, nb, "fast", {}, 1});
  q.run_all();
  EXPECT_EQ(q.now(), 3u);
}

TEST(SimNetwork, DownNodeDropsTraffic) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_node_down(nb, true);
  net.send({na, nb, "lost", {}, 1});
  q.run_all();
  EXPECT_TRUE(b.messages.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_node_down(nb, false);
  net.send({na, nb, "found", {}, 2});
  q.run_all();
  EXPECT_EQ(b.messages.size(), 1u);
}

TEST(SimNetwork, CrashAfterSendDropsInFlight) {
  EventQueue q;
  Network net(q, 1);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link({.base_latency = 10, .ticks_per_kib = 0});
  net.send({na, nb, "in-flight", {}, 1});
  net.set_node_down(nb, true);  // crashes before delivery
  q.run_all();
  EXPECT_TRUE(b.messages.empty());
}

TEST(SimNetwork, LossyLinkDropsApproximatelyAtRate) {
  EventQueue q;
  Network net(q, 99);
  Inbox a, b;
  const NodeId na = net.add_node(a.handler());
  const NodeId nb = net.add_node(b.handler());
  net.set_default_link(
      {.base_latency = 1, .ticks_per_kib = 0, .drop_probability = 0.3});
  for (int i = 0; i < 2000; ++i) {
    net.send({na, nb, "maybe", {}, static_cast<std::uint64_t>(i)});
  }
  q.run_all();
  EXPECT_NEAR(static_cast<double>(b.messages.size()) / 2000.0, 0.7, 0.04);
}

// ---------------------------------------------------------------------------
// NetModel — the serializable scenario-grade delivery substrate
// ---------------------------------------------------------------------------

/// Drains every message due at or before `now` in pop order.
std::vector<TransferMessage> drain_due(NetModel& model, Time now) {
  std::vector<TransferMessage> out;
  TransferMessage msg;
  while (model.pop_due(now, msg)) out.push_back(msg);
  return out;
}

TEST(NetModel, SameTimestampPopsInSendOrder) {
  // The (deliver_at, seq) tie-break: messages due at the same tick pop in
  // FIFO send order, exactly like EventQueue events and the protocol
  // pending list — delivery order is state, so it must be canonical.
  NetConfig config;  // all-zero: every message due at its send time
  NetModel model(config, 7);
  for (std::uint64_t i = 0; i < 10; ++i) {
    model.send(5, 0, {.file = i, .to_sector = 0, .deadline = 100});
  }
  const auto delivered = drain_due(model, 5);
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(delivered[i].file, i);
}

TEST(NetModel, ZeroConfigConsumesNoRandomness) {
  // The zero-latency special case must not touch the RNG: the loss draw
  // only happens when drop_probability > 0 and the jitter draw only when
  // jitter > 0. Two models — one never sending, one sending heavily —
  // must keep byte-identical serialized RNG state.
  NetConfig config;
  NetModel busy(config, 99);
  NetModel idle(config, 99);
  for (std::uint64_t i = 0; i < 100; ++i) {
    busy.send(i, 4096, {.file = i, .to_sector = i, .deadline = i + 10});
  }
  (void)drain_due(busy, 200);
  util::BinaryWriter busy_bytes;
  util::BinaryWriter idle_bytes;
  busy.save_state(busy_bytes);
  idle.save_state(idle_bytes);
  // Same RNG words at the head of both encodings.
  ASSERT_GE(busy_bytes.data().size(), 32u);
  EXPECT_TRUE(std::equal(busy_bytes.data().begin(),
                         busy_bytes.data().begin() + 32,
                         idle_bytes.data().begin()));
}

TEST(NetModel, SameSeedReproducesDeliverySequence) {
  const NetConfig config{.regions = 4,
                         .base_latency = 3,
                         .region_latency = 5,
                         .ticks_per_kib = 1,
                         .jitter = 6,
                         .drop_probability = 0.2};
  NetModel a(config, 1234);
  NetModel b(config, 1234);
  NetModel c(config, 4321);
  for (NetModel* m : {&a, &b, &c}) {
    for (std::uint64_t i = 0; i < 500; ++i) {
      m->send(i / 4, 1024 + 512 * (i % 3),
              {.file = i, .from_sector = i % 7, .to_sector = i % 11,
               .deadline = i / 4 + 30});
    }
  }
  util::BinaryWriter wa;
  util::BinaryWriter wb;
  util::BinaryWriter wc;
  a.save_state(wa);
  b.save_state(wb);
  c.save_state(wc);
  // Same seed: byte-identical state (same drops, same latencies, same
  // in-flight set). Different seed: a different trajectory.
  EXPECT_EQ(wa.data(), wb.data());
  EXPECT_NE(wa.data(), wc.data());
  EXPECT_EQ(a.sent(), 500u);
  EXPECT_EQ(a.dropped_loss(), b.dropped_loss());
  EXPECT_GT(a.dropped_loss(), 0u);
}

TEST(NetModel, PartitionKeepsIntraRegionLinks) {
  NetConfig config;
  config.regions = 2;
  NetModel model(config, 7);
  model.set_region_partitioned(1, true);
  // Intra-region traffic inside the partitioned region survives...
  model.send(0, 0, {.file = 1, .from_sector = 1, .to_sector = 3});
  // ...cross-region and backbone traffic into it is lost...
  model.send(0, 0, {.file = 2, .from_sector = 0, .to_sector = 3});
  model.send(0, 0,
             {.file = 3, .from_sector = kBackboneRegion, .to_sector = 3});
  // ...and traffic between unpartitioned endpoints is unaffected.
  model.send(0, 0,
             {.file = 4, .from_sector = kBackboneRegion, .to_sector = 2});
  const auto delivered = drain_due(model, 0);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].file, 1u);
  EXPECT_EQ(delivered[1].file, 4u);
  EXPECT_EQ(model.dropped_partition(), 2u);
}

TEST(NetModel, DownRegionLosesAllLinks) {
  NetConfig config;
  config.regions = 2;
  NetModel model(config, 7);
  model.set_region_down(1, true);
  model.send(0, 0, {.file = 1, .from_sector = 1, .to_sector = 3});  // intra
  model.send(0, 0, {.file = 2, .from_sector = 0, .to_sector = 3});  // cross
  EXPECT_TRUE(drain_due(model, 0).empty());
  EXPECT_EQ(model.dropped_down(), 2u);
}

TEST(NetModel, MidFlightPartitionDropsAtDelivery) {
  NetConfig config;
  config.regions = 2;
  config.base_latency = 10;
  NetModel model(config, 7);
  // Cross-region traffic (region 0 -> region 1), cut mid-flight. The
  // intra-region case survives a partition by design, so only a
  // border-crossing message can be lost at delivery time.
  model.send(0, 0, {.file = 1, .from_sector = 0, .to_sector = 3});
  model.set_region_partitioned(1, false);  // no-op, still up
  model.set_region_partitioned(1, true);   // cuts the link mid-flight
  EXPECT_TRUE(drain_due(model, 20).empty());
  EXPECT_EQ(model.dropped_partition(), 1u);
  EXPECT_EQ(model.in_flight(), 0u);
}

TEST(NetModel, SaveLoadRoundTripsInFlightMessages) {
  const NetConfig config{.regions = 3,
                         .base_latency = 4,
                         .region_latency = 7,
                         .ticks_per_kib = 2,
                         .jitter = 5,
                         .drop_probability = 0.1};
  NetModel original(config, 42);
  original.set_region_partitioned(2, true);
  for (std::uint64_t i = 0; i < 200; ++i) {
    original.send(i / 8, 2048,
                  {.file = i, .from_sector = i % 5, .to_sector = i % 9,
                   .deadline = i / 8 + 40});
  }
  (void)drain_due(original, 10);  // deliver a prefix, leave the rest in flight
  ASSERT_GT(original.in_flight(), 0u);

  util::BinaryWriter saved;
  original.save_state(saved);
  NetModel restored(config, 42);
  util::BinaryReader reader(saved.data());
  restored.load_state(reader);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(reader.exhausted());

  // The restored model must deliver the identical remaining sequence and
  // re-encode to the identical bytes afterwards.
  EXPECT_EQ(restored.in_flight(), original.in_flight());
  EXPECT_EQ(restored.next_delivery_time(), original.next_delivery_time());
  const auto rest_a = drain_due(original, 500);
  const auto rest_b = drain_due(restored, 500);
  ASSERT_EQ(rest_a.size(), rest_b.size());
  for (std::size_t i = 0; i < rest_a.size(); ++i) {
    EXPECT_EQ(rest_a[i].file, rest_b[i].file);
    EXPECT_EQ(rest_a[i].to_sector, rest_b[i].to_sector);
  }
  util::BinaryWriter end_a;
  util::BinaryWriter end_b;
  original.save_state(end_a);
  restored.save_state(end_b);
  EXPECT_EQ(end_a.data(), end_b.data());
}

// ---------------------------------------------------------------------------
// NetModel under the scenario engine: worker-count byte-identity
// ---------------------------------------------------------------------------

scenario::ScenarioSpec net_condition_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "sim_test_net";
  spec.seed = 2024;
  spec.sectors = 60;
  spec.sector_units = 4;
  spec.initial_files = 90;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.avg_refresh = 5;
  spec.params.delay_per_kib = 30;
  spec.network.enabled = true;
  spec.network.regions = 3;
  spec.network.base_latency = 2;
  spec.network.region_latency = 4;
  spec.network.jitter = 3;
  spec.network.drop_probability = 0.05;
  spec.phases.push_back(scenario::PhaseSpec::make_idle(2));
  spec.phases.push_back(scenario::PhaseSpec::make_partition(1, 2));
  spec.phases.push_back(scenario::PhaseSpec::make_idle(2));
  spec.phases.push_back(scenario::PhaseSpec::make_outage(2, 1, 3));
  spec.phases.push_back(scenario::PhaseSpec::make_idle(1));
  return spec;
}

TEST(NetModelScenario, ByteIdenticalAcrossWorkerCounts) {
  // Latency, drops, partitions, and a crash-restart must all ride the
  // deterministic sweep merge: the report and end-of-run state hash are a
  // pure function of the spec, independent of engine.workers.
  std::string report_w1;
  std::string hash_w1;
  for (const std::uint64_t workers : {1ull, 4ull, 16ull}) {
    scenario::ScenarioSpec spec = net_condition_spec();
    spec.engine_workers = workers;
    scenario::ScenarioRunner runner(std::move(spec));
    const std::string report = runner.run().to_json();
    const std::string hash = snapshot::state_hash(runner);
    if (workers == 1) {
      report_w1 = report;
      hash_w1 = hash;
    } else {
      EXPECT_EQ(report, report_w1) << "workers=" << workers;
      EXPECT_EQ(hash, hash_w1) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace fi::sim
