// Parallel epoch sweeps must be invisible: a run with `workers = N` has to
// be byte-identical to `workers = 1` — same event sequence, same rent
// flows, same serialized report — across churn, corruption (the sweep's
// serial-fallback hazard path), selfish refresh and rent audits.
//
// This suite also pins the SoA refactor's allocation contract: once
// capacities are warm, a steady-state proof sweep performs ZERO heap
// allocations (counting global operator new hook below).

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "core/network.h"
#include "ledger/account.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/task_pool.h"

// ---- Counting allocator hook ----------------------------------------------
//
// Global operator new replacement (must have external linkage). Counting is
// off by default, so the rest of the binary is unaffected; the
// zero-allocation test flips it on around a steady-state sweep.

std::atomic<bool> g_count_allocations{false};
std::atomic<std::uint64_t> g_allocation_count{0};

namespace {
void* counted_alloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using fi::AccountId;
using fi::Time;
using fi::TokenAmount;
using fi::core::Event;
using fi::core::FileId;
using fi::core::Network;
using fi::core::NetworkStats;
using fi::core::Params;
using fi::core::ReplicaTransferRequested;
using fi::core::SectorId;
using fi::scenario::PhaseSpec;
using fi::scenario::ScenarioRunner;
using fi::scenario::ScenarioSpec;

// ---- Event recording ------------------------------------------------------

struct EventPrinter {
  std::ostringstream& out;

  void operator()(const fi::core::FileStored& e) {
    out << "stored f" << e.file;
  }
  void operator()(const fi::core::UploadFailed& e) {
    out << "upload_failed f" << e.file << " " << e.reason;
  }
  void operator()(const fi::core::FileDiscarded& e) {
    out << "discarded f" << e.file << " rent=" << e.for_unpaid_rent;
  }
  void operator()(const fi::core::FileLost& e) {
    out << "lost f" << e.file << " v=" << e.value << " c="
        << e.compensated_now;
  }
  void operator()(const fi::core::SectorCorrupted& e) {
    out << "corrupted s" << e.sector << " conf=" << e.confiscated;
  }
  void operator()(const fi::core::SectorRemoved& e) {
    out << "removed s" << e.sector << " ref=" << e.refunded;
  }
  void operator()(const fi::core::ProviderPunished& e) {
    out << "punished s" << e.sector << " a=" << e.amount << " " << e.reason;
  }
  void operator()(const ReplicaTransferRequested& e) {
    out << "transfer f" << e.file << "#" << e.index << " s" << e.from
        << "->s" << e.to << " d=" << e.deadline;
  }
  void operator()(const fi::core::ReplicaActivated& e) {
    out << "activated f" << e.file << "#" << e.index << " s" << e.sector;
  }
  void operator()(const fi::core::ReplicaReleased& e) {
    out << "released f" << e.file << "#" << e.index << " s" << e.sector;
  }
  void operator()(const fi::core::RefreshSkipped& e) {
    out << "refresh_skipped f" << e.file << "#" << e.index << " s"
        << e.sector;
  }
  void operator()(const fi::core::RentDistributed& e) {
    out << "rent_distributed " << e.total;
  }
  void operator()(const fi::core::RetrievalRequested& e) {
    out << "retrieval f" << e.file;
  }
};

// ---- A miniature honest-provider harness over core::Network ---------------

struct DriveResult {
  std::string events;
  NetworkStats stats;
  TokenAmount rent_charged = 0;
  TokenAmount rent_paid = 0;
  TokenAmount settled = 0;
  std::size_t files_left = 0;
};

bool stats_equal(const NetworkStats& a, const NetworkStats& b) {
  return a.files_added == b.files_added && a.files_stored == b.files_stored &&
         a.upload_failures == b.upload_failures &&
         a.files_discarded == b.files_discarded &&
         a.files_lost == b.files_lost && a.value_lost == b.value_lost &&
         a.value_compensated == b.value_compensated &&
         a.sectors_corrupted == b.sectors_corrupted &&
         a.refreshes_started == b.refreshes_started &&
         a.refreshes_completed == b.refreshes_completed &&
         a.refreshes_failed == b.refreshes_failed &&
         a.refreshes_self == b.refreshes_self &&
         a.refresh_collisions == b.refresh_collisions &&
         a.add_resamples == b.add_resamples &&
         a.punishments == b.punishments;
}

/// Drives the full pipeline — uploads, proof cycles, refreshes, physical
/// corruption with one transient outage, discards — with the given worker
/// count, recording every emitted event with its timestamp.
DriveResult drive(std::uint64_t workers) {
  Params params;
  params.verify_proofs = false;
  params.min_value = 10;
  params.k = 3;
  params.cap_para = 200.0;
  params.gamma_deposit = 0.01;
  params.avg_refresh = 2.0;  // heavy refresh traffic => refresh sweeps

  fi::ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/99);
  net.set_auto_prove(true);
  net.set_workers(workers);

  std::ostringstream log;
  std::vector<ReplicaTransferRequested> transfers;
  net.subscribe([&](const Event& event) {
    log << "t" << net.now() << " ";
    std::visit(EventPrinter{log}, event);
    log << "\n";
    if (const auto* t = std::get_if<ReplicaTransferRequested>(&event)) {
      transfers.push_back(*t);
    }
  });

  const AccountId provider = ledger.create_account(100'000'000);
  const AccountId client = ledger.create_account(100'000'000);
  constexpr std::uint64_t kSectors = 60;
  for (std::uint64_t s = 0; s < kSectors; ++s) {
    const auto id =
        net.sector_register(provider, 4 * params.min_capacity);
    EXPECT_TRUE(id.is_ok()) << id.status().to_string();
  }

  std::vector<FileId> files;
  for (int f = 0; f < 200; ++f) {
    const auto id = net.file_add(
        client, {static_cast<fi::ByteCount>(1024 + (f % 2) * 512), 10, {}});
    EXPECT_TRUE(id.is_ok()) << id.status().to_string();
    files.push_back(id.value());
  }

  const auto confirm_all = [&] {
    std::vector<ReplicaTransferRequested> batch;
    batch.swap(transfers);
    for (const ReplicaTransferRequested& req : batch) {
      if (!net.sectors().exists(req.to)) continue;
      (void)net.file_confirm(net.sectors().at(req.to).owner, req.file,
                             req.index, req.to, {}, std::nullopt);
    }
  };
  const auto advance_confirming = [&](Time horizon) {
    confirm_all();
    while (true) {
      const Time next = net.next_task_time();
      if (next == fi::kNoTime || next > horizon) break;
      net.advance_to(next);
      confirm_all();
    }
    net.advance_to(horizon);
    confirm_all();
  };

  // Upload window, then three clean proof cycles (pure parallel sweeps).
  advance_confirming(net.now() + 3 + 3 * params.proof_cycle);

  // Physical corruption: two sectors go dark, one recovers before the
  // deadline (late punishments only), the others breach (hazard fallback
  // with confiscation + compensation).
  net.corrupt_sector_physical(0);
  net.corrupt_sector_physical(1);
  net.corrupt_sector_physical(2);
  advance_confirming(net.now() + 2 * params.proof_cycle);  // late window
  net.restore_sector_physical(2);
  advance_confirming(net.now() + 3 * params.proof_cycle);  // past deadline

  // Churny tail: discard a deterministic slice, keep proving.
  for (std::size_t f = 0; f < files.size(); f += 7) {
    if (net.file_exists(files[f])) {
      (void)net.file_discard(client, files[f]);
    }
  }
  advance_confirming(net.now() + 3 * params.proof_cycle);

  DriveResult result;
  result.settled = net.settle_all_rent();
  result.events = log.str();
  result.stats = net.stats();
  result.rent_charged = net.total_rent_charged();
  result.rent_paid = net.total_rent_paid();
  result.files_left = net.file_count();
  return result;
}

TEST(ParallelDeterminismTest, EventSequenceIsWorkerCountInvariant) {
  const DriveResult serial = drive(1);
  ASSERT_GT(serial.events.size(), 0u);
  EXPECT_GT(serial.stats.sectors_corrupted, 0u);  // hazard path exercised
  EXPECT_GT(serial.stats.punishments, 0u);        // late path exercised
  EXPECT_GT(serial.stats.refreshes_completed, 0u);

  for (const std::uint64_t workers : {4ull, 16ull}) {
    const DriveResult parallel = drive(workers);
    EXPECT_EQ(serial.events, parallel.events) << "workers=" << workers;
    EXPECT_TRUE(stats_equal(serial.stats, parallel.stats))
        << "workers=" << workers;
    EXPECT_EQ(serial.rent_charged, parallel.rent_charged);
    EXPECT_EQ(serial.rent_paid, parallel.rent_paid);
    EXPECT_EQ(serial.settled, parallel.settled);
    EXPECT_EQ(serial.files_left, parallel.files_left);
  }
}

// ---- Scenario-level: serialized reports ----------------------------------

ScenarioSpec mixed_spec(std::uint64_t workers) {
  ScenarioSpec spec;
  spec.name = "parallel_determinism";
  spec.seed = 1234;
  spec.engine_workers = workers;
  spec.sectors = 400;
  spec.sector_units = 4;
  spec.initial_files = 800;
  spec.file_size_min = 1024;
  spec.file_size_max = 2048;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.k = 3;
  spec.params.cap_para = 200.0;
  spec.params.gamma_deposit = 0.01;
  spec.params.avg_refresh = 5.0;
  spec.phases.push_back(PhaseSpec::make_churn(3, 100, 0.05));
  spec.phases.push_back(PhaseSpec::make_corrupt_burst(0.02, 4));
  spec.phases.push_back(PhaseSpec::make_selfish_refresh(0.3, 3));
  spec.phases.push_back(PhaseSpec::make_rent_audit(1));
  return spec;
}

TEST(ParallelDeterminismTest, ScenarioReportsAreByteIdenticalAcrossWorkers) {
  ScenarioRunner serial(mixed_spec(1));
  const std::string reference = serial.run().to_json(false);
  ASSERT_FALSE(reference.empty());

  for (const std::uint64_t workers : {4ull, 16ull}) {
    ScenarioRunner runner(mixed_spec(workers));
    EXPECT_EQ(reference, runner.run().to_json(false))
        << "workers=" << workers;
  }
}

// ---- Allocation-free steady-state sweeps ----------------------------------

/// The SoA/arena layout's contract: after warm-up, a proof-cycle sweep
/// recycles every buffer it needs — the pending heap, the popped-task
/// batch, the proof-scan scratch — so a steady-state epoch makes no heap
/// allocation at all. Measured serial (workers=1): thread hand-off buffers
/// are a pool concern, the table layout must not allocate regardless.
TEST(ParallelDeterminismTest, SteadyStateSweepIsAllocationFree) {
  Params params;
  params.verify_proofs = false;
  params.min_value = 10;
  params.k = 3;
  params.cap_para = 200.0;
  params.gamma_deposit = 0.01;
  params.avg_refresh = 1e15;  // refresh countdowns never fire: pure sweeps

  fi::ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/77);
  net.set_auto_prove(true);
  net.set_workers(1);

  const AccountId provider = ledger.create_account(100'000'000);
  const AccountId client = ledger.create_account(100'000'000);
  for (std::uint64_t s = 0; s < 40; ++s) {
    ASSERT_TRUE(net.sector_register(provider, 4 * params.min_capacity).is_ok());
  }
  std::vector<ReplicaTransferRequested> transfers;
  net.subscribe([&](const Event& event) {
    if (const auto* t = std::get_if<ReplicaTransferRequested>(&event)) {
      transfers.push_back(*t);
    }
  });
  std::vector<FileId> files;
  for (int f = 0; f < 100; ++f) {
    const auto id = net.file_add(client, {1024, 10, {}});
    ASSERT_TRUE(id.is_ok()) << id.status().to_string();
    files.push_back(id.value());
  }
  for (const ReplicaTransferRequested& req : transfers) {
    ASSERT_TRUE(net
                    .file_confirm(net.sectors().at(req.to).owner, req.file,
                                  req.index, req.to, {}, std::nullopt)
                    .is_ok());
  }

  // Warm-up: three full proof cycles grow every reused buffer to its
  // steady-state capacity.
  net.advance_to(net.now() + 3 + 3 * params.proof_cycle);
  ASSERT_GT(net.stats().files_stored, 0u);

  // Measured window: two more steady-state cycles, zero allocations.
  g_allocation_count.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  net.advance_to(net.now() + 2 * params.proof_cycle);
  g_count_allocations.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), 0u);

  // Sanity: the hook itself works — a deliberate allocation is counted.
  g_count_allocations.store(true, std::memory_order_relaxed);
  auto* probe = new std::uint64_t(42);
  g_count_allocations.store(false, std::memory_order_relaxed);
  delete probe;
  EXPECT_GE(g_allocation_count.load(std::memory_order_relaxed), 1u);
}

TEST(ParallelDeterminismTest, WorkerResolutionOnTheEngine) {
  Params params;
  params.verify_proofs = false;
  fi::ledger::Ledger ledger;
  Network net(params, ledger, 1);
  EXPECT_EQ(net.workers(), 1u);
  net.set_workers(0);  // hardware concurrency, at least one
  EXPECT_GE(net.workers(), 1u);
  net.set_workers(5);
  EXPECT_EQ(net.workers(), 5u);
  net.set_workers(1'000'000);  // absurd requests clamp
  EXPECT_EQ(net.workers(),
            static_cast<unsigned>(fi::util::TaskPool::kMaxWorkers));
  net.set_workers(1);
  EXPECT_EQ(net.workers(), 1u);
}

}  // namespace
