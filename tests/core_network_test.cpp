#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "core/network.h"
#include "ledger/account.h"

namespace fi::core {
namespace {

/// Metadata-mode fixture: proofs are trusted declarations, so protocol
/// control flow can be tested without sealing bytes (the cryptographic path
/// is covered by core_agents_test).
class NetworkFixture : public ::testing::Test {
 protected:
  static Params test_params() {
    Params p;
    p.min_capacity = 1024;
    p.min_value = 10;
    p.k = 2;
    p.cap_para = 10.0;
    p.gamma_deposit = 0.5;  // generous pool so compensation is visible
    p.proof_cycle = 100;
    p.proof_due = 150;
    p.proof_deadline = 300;
    p.avg_refresh = 1000.0;  // effectively no refresh unless a test wants it
    p.verify_proofs = false;
    p.cr_size = 256;
    return p;
  }

  void build(Params p, int sectors = 4, ByteCount capacity = 4 * 1024) {
    params = p;
    net = std::make_unique<Network>(p, ledger, /*seed=*/7);
    net->subscribe([this](const Event& e) { events.push_back(e); });
    client = ledger.create_account(1'000'000);
    for (int i = 0; i < sectors; ++i) {
      providers.push_back(ledger.create_account(1'000'000));
      auto id = net->sector_register(providers.back(), capacity);
      EXPECT_TRUE(id.is_ok()) << id.status().to_string();
      sectors_.push_back(id.value());
    }
  }

  /// Adds a file and confirms every replica, returning the id.
  FileId add_and_store(ByteCount size, TokenAmount value) {
    auto id = net->file_add(client, {size, value, {}});
    EXPECT_TRUE(id.is_ok()) << id.status().to_string();
    confirm_all(id.value());
    const Time deadline = net->now() + params.transfer_window(size);
    net->advance_to(deadline);
    EXPECT_TRUE(net->file_exists(id.value()));
    return id.value();
  }

  void confirm_all(FileId file) {
    for (ReplicaIndex i = 0; i < net->allocations().replica_count(file); ++i) {
      const AllocEntry& e = net->allocations().entry(file, i);
      if (e.state != AllocState::alloc || e.next == kNoSector) continue;
      const ProviderId owner = net->sectors().at(e.next).owner;
      auto status =
          net->file_confirm(owner, file, i, e.next, {}, std::nullopt);
      EXPECT_TRUE(status.is_ok()) << status.to_string();
    }
  }

  template <typename E>
  [[nodiscard]] std::vector<E> events_of() const {
    std::vector<E> out;
    for (const Event& e : events) {
      if (const E* ev = std::get_if<E>(&e)) out.push_back(*ev);
    }
    return out;
  }

  /// Every token in the system is in a known account.
  [[nodiscard]] TokenAmount system_total() const {
    TokenAmount total = ledger.balance(client);
    for (AccountId p : providers) total += ledger.balance(p);
    total += ledger.balance(net->escrow_account());
    total += ledger.balance(net->pool_account());
    total += ledger.balance(net->rent_pool_account());
    total += ledger.balance(net->gas_sink_account());
    total += ledger.balance(net->traffic_escrow_account());
    return total;
  }

  Params params;
  ledger::Ledger ledger;
  std::unique_ptr<Network> net;
  ClientId client = 0;
  std::vector<ProviderId> providers;
  std::vector<SectorId> sectors_;
  std::vector<Event> events;
};

// ---------------------------------------------------------------------------
// Sector registration / disable
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, RegisterPledgesDeposit) {
  build(test_params(), 1);
  const TokenAmount deposit = params.sector_deposit(4 * 1024);
  EXPECT_EQ(net->deposits().remaining(sectors_[0]), deposit);
  EXPECT_EQ(ledger.balance(providers[0]),
            1'000'000 - deposit - params.gas_per_task);
}

TEST_F(NetworkFixture, RegisterRejectsBadCapacityAndPoorProvider) {
  build(test_params(), 1);
  EXPECT_EQ(net->sector_register(providers[0], 1000).status().code(),
            util::ErrorCode::invalid_argument);
  const AccountId pauper = ledger.create_account(1);
  EXPECT_EQ(net->sector_register(pauper, 1024).status().code(),
            util::ErrorCode::insufficient_funds);
}

TEST_F(NetworkFixture, DisableEmptySectorRefundsImmediately) {
  build(test_params(), 1);
  const TokenAmount before = ledger.balance(providers[0]);
  ASSERT_TRUE(net->sector_disable(providers[0], sectors_[0]).is_ok());
  EXPECT_EQ(net->sectors().at(sectors_[0]).state, SectorState::removed);
  EXPECT_EQ(ledger.balance(providers[0]),
            before + params.sector_deposit(4 * 1024) - params.gas_per_task);
  EXPECT_EQ(events_of<SectorRemoved>().size(), 1u);
}

TEST_F(NetworkFixture, DisableRequiresOwnership) {
  build(test_params(), 2);
  EXPECT_EQ(net->sector_disable(providers[0], sectors_[1]).code(),
            util::ErrorCode::permission_denied);
}

// ---------------------------------------------------------------------------
// File_Add validation and allocation
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, FileAddValidatesInputs) {
  build(test_params());
  EXPECT_EQ(net->file_add(client, {0, 10, {}}).status().code(),
            util::ErrorCode::invalid_argument);
  EXPECT_EQ(net->file_add(client, {100, 15, {}}).status().code(),
            util::ErrorCode::invalid_argument);
  EXPECT_EQ(net->file_add(client, {100, 0, {}}).status().code(),
            util::ErrorCode::invalid_argument);
  EXPECT_EQ(net->file_add(999, {100, 10, {}}).status().code(),
            util::ErrorCode::not_found);
}

TEST_F(NetworkFixture, FileAddReservesSpaceAndEmitsTransfers) {
  build(test_params());
  auto id = net->file_add(client, {2048, 20, {}});  // cp = 4
  ASSERT_TRUE(id.is_ok());
  const auto requests = events_of<ReplicaTransferRequested>();
  ASSERT_EQ(requests.size(), 4u);
  ByteCount reserved = 0;
  for (SectorId s : sectors_) {
    reserved += net->sectors().at(s).capacity - net->sectors().at(s).free_cap;
  }
  EXPECT_EQ(reserved, 4u * 2048u);
  for (const auto& r : requests) {
    EXPECT_EQ(r.from, kNoSector);
    EXPECT_EQ(r.client, client);
    EXPECT_EQ(r.deadline, params.transfer_window(2048));
  }
}

TEST_F(NetworkFixture, FileAddFailsWhenNothingFits) {
  build(test_params(), 2, 1024);
  // 800-byte file, cp=2; both sectors can hold one replica each; a second
  // file cannot fit anywhere.
  ASSERT_TRUE(net->file_add(client, {800, 10, {}}).is_ok());
  const auto result = net->file_add(client, {800, 10, {}});
  EXPECT_EQ(result.status().code(), util::ErrorCode::insufficient_space);
  EXPECT_GT(net->stats().add_resamples, 0u);
  // Failed allocation must not leak reservations.
  ByteCount reserved = 0;
  for (SectorId s : sectors_) {
    reserved += net->sectors().at(s).capacity - net->sectors().at(s).free_cap;
  }
  EXPECT_EQ(reserved, 2u * 800u);
}

TEST_F(NetworkFixture, FileAddWithNoSectorsFails) {
  build(test_params(), 0);
  EXPECT_EQ(net->file_add(client, {100, 10, {}}).status().code(),
            util::ErrorCode::unavailable);
}

// ---------------------------------------------------------------------------
// Upload: confirm, CheckAlloc success and failure
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, SuccessfulUploadActivatesReplicas) {
  build(test_params());
  const FileId id = add_and_store(1000, 20);
  EXPECT_EQ(events_of<FileStored>().size(), 1u);
  EXPECT_EQ(events_of<ReplicaActivated>().size(), 4u);
  for (ReplicaIndex i = 0; i < 4; ++i) {
    const AllocEntry& e = net->allocations().entry(id, i);
    EXPECT_EQ(e.state, AllocState::normal);
    EXPECT_NE(e.prev, kNoSector);
    EXPECT_EQ(e.next, kNoSector);
    EXPECT_NE(e.last, kNoTime);
  }
  EXPECT_EQ(net->total_stored_value(), 20u);
  EXPECT_EQ(net->stats().files_stored, 1u);
}

TEST_F(NetworkFixture, ConfirmValidations) {
  build(test_params());
  auto id = net->file_add(client, {1000, 10, {}});
  ASSERT_TRUE(id.is_ok());
  const AllocEntry& e = net->allocations().entry(id.value(), 0);
  const ProviderId owner = net->sectors().at(e.next).owner;
  // Wrong provider.
  const ProviderId wrong =
      providers[0] == owner ? providers[1] : providers[0];
  if (net->sectors().at(e.next).owner != wrong) {
    EXPECT_EQ(net->file_confirm(wrong, id.value(), 0, e.next, {}, std::nullopt)
                  .code(),
              util::ErrorCode::permission_denied);
  }
  // Unknown file / bad index.
  EXPECT_EQ(
      net->file_confirm(owner, 999, 0, e.next, {}, std::nullopt).code(),
      util::ErrorCode::not_found);
  EXPECT_EQ(
      net->file_confirm(owner, id.value(), 9, e.next, {}, std::nullopt).code(),
      util::ErrorCode::invalid_argument);
  // Valid confirm, then double-confirm is rejected (state moved on).
  ASSERT_TRUE(
      net->file_confirm(owner, id.value(), 0, e.next, {}, std::nullopt).is_ok());
  EXPECT_EQ(
      net->file_confirm(owner, id.value(), 0, e.next, {}, std::nullopt).code(),
      util::ErrorCode::failed_precondition);
}

TEST_F(NetworkFixture, UnconfirmedUploadFailsAndRefunds) {
  build(test_params());
  const TokenAmount before = ledger.balance(client);
  auto id = net->file_add(client, {1000, 20, {}});  // cp=4
  ASSERT_TRUE(id.is_ok());
  // Only confirm replica 0; the rest never arrive.
  const AllocEntry& e0 = net->allocations().entry(id.value(), 0);
  const ProviderId owner = net->sectors().at(e0.next).owner;
  ASSERT_TRUE(
      net->file_confirm(owner, id.value(), 0, e0.next, {}, std::nullopt).is_ok());
  net->advance_to(params.transfer_window(1000));

  EXPECT_FALSE(net->file_exists(id.value()));
  EXPECT_EQ(net->stats().upload_failures, 1u);
  ASSERT_EQ(events_of<UploadFailed>().size(), 1u);
  // All reservations released.
  for (SectorId s : sectors_) {
    EXPECT_EQ(net->sectors().at(s).free_cap, net->sectors().at(s).capacity);
  }
  // Client got back the 3 unconfirmed traffic fees; the confirmed provider
  // keeps one; gas (request + prepaid CheckAlloc) is burnt.
  const TokenAmount traffic = params.traffic_fee(1000);
  EXPECT_EQ(ledger.balance(client),
            before - 2 * params.gas_per_task - traffic);
  EXPECT_EQ(ledger.balance(net->traffic_escrow_account()), 0u);
}

TEST_F(NetworkFixture, ConfirmedProviderEarnsTrafficFee) {
  build(test_params());
  auto id = net->file_add(client, {1000, 10, {}});
  ASSERT_TRUE(id.is_ok());
  const AllocEntry& e = net->allocations().entry(id.value(), 0);
  const ProviderId owner = net->sectors().at(e.next).owner;
  const TokenAmount before = ledger.balance(owner);
  ASSERT_TRUE(
      net->file_confirm(owner, id.value(), 0, e.next, {}, std::nullopt).is_ok());
  EXPECT_EQ(ledger.balance(owner), before + params.traffic_fee(1000));
}

// ---------------------------------------------------------------------------
// Proofs, punishment, corruption (Auto_CheckProof)
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, AutoProveKeepsFileHealthy) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  net->advance_to(3000);
  EXPECT_TRUE(net->file_exists(id));
  EXPECT_EQ(net->stats().punishments, 0u);
  EXPECT_EQ(net->stats().sectors_corrupted, 0u);
}

TEST_F(NetworkFixture, ManualTrustedProofsKeepFileHealthy) {
  build(test_params());
  const FileId id = add_and_store(1000, 20);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const Time next_check = net->next_task_time();
    net->advance_to(next_check - 1);
    for (ReplicaIndex i = 0; i < 4; ++i) {
      const AllocEntry& e = net->allocations().entry(id, i);
      auto status = net->file_prove_trusted(net->sectors().at(e.prev).owner,
                                            id, i, e.prev, net->now());
      ASSERT_TRUE(status.is_ok()) << status.to_string();
    }
    net->advance_to(next_check);
  }
  EXPECT_TRUE(net->file_exists(id));
  EXPECT_EQ(net->stats().punishments, 0u);
}

TEST_F(NetworkFixture, LateProofPunished) {
  build(test_params());
  const FileId id = add_and_store(1000, 20);
  // Nobody proves: the second CheckProof sees last + proof_due < now.
  const TokenAmount deposit_before = net->deposits().remaining(
      net->allocations().entry(id, 0).prev);
  net->advance_to(251);  // checks at 1+100=101 (fresh), 201 (late)
  EXPECT_GT(net->stats().punishments, 0u);
  EXPECT_LT(net->deposits().remaining(net->allocations().entry(id, 0).prev),
            deposit_before);
  EXPECT_FALSE(events_of<ProviderPunished>().empty());
  EXPECT_TRUE(net->file_exists(id));
}

TEST_F(NetworkFixture, ProofDeadlineCorruptsSector) {
  build(test_params());
  const FileId id = add_and_store(1000, 20);
  // No proofs at all: at t=301+, last(=1) + 300 < now -> confiscation.
  net->advance_to(402);
  EXPECT_GT(net->stats().sectors_corrupted, 0u);
  EXPECT_FALSE(events_of<SectorCorrupted>().empty());
  const auto corrupted = events_of<SectorCorrupted>();
  for (const auto& ev : corrupted) {
    EXPECT_EQ(net->deposits().remaining(ev.sector), 0u);
    EXPECT_GT(ev.confiscated, 0u);
  }
  (void)id;
}

TEST_F(NetworkFixture, ReplayedProofRejected) {
  build(test_params());
  const FileId id = add_and_store(1000, 20);
  net->advance_to(50);
  const AllocEntry& e = net->allocations().entry(id, 0);
  const ProviderId owner = net->sectors().at(e.prev).owner;
  ASSERT_TRUE(net->file_prove_trusted(owner, id, 0, e.prev, 50).is_ok());
  EXPECT_EQ(net->file_prove_trusted(owner, id, 0, e.prev, 50).code(),
            util::ErrorCode::proof_invalid);
  EXPECT_EQ(net->file_prove_trusted(owner, id, 0, e.prev, 40).code(),
            util::ErrorCode::proof_invalid);
  EXPECT_EQ(net->file_prove_trusted(owner, id, 0, e.prev, 99).code(),
            util::ErrorCode::proof_invalid);  // future-dated
}

// ---------------------------------------------------------------------------
// File loss and compensation
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, LosingAllReplicasCompensatesClient) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  const TokenAmount before = ledger.balance(client);
  // Corrupt every sector holding a replica.
  for (ReplicaIndex i = 0; i < 4; ++i) {
    const AllocEntry& e = net->allocations().entry(id, i);
    if (net->sectors().at(e.prev).state != SectorState::corrupted) {
      net->corrupt_sector_now(e.prev);
    }
  }
  const Time next_check = net->next_task_time();
  net->advance_to(next_check);
  EXPECT_FALSE(net->file_exists(id));
  const auto lost = events_of<FileLost>();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].value, 20u);
  EXPECT_EQ(lost[0].compensated_now, 20u);  // pool is well funded
  // Fig. 8 deducts the cycle's rent + gas before discovering the loss.
  const TokenAmount cycle_cost =
      params.rent_per_cycle(1000, 4) + 2 * params.gas_per_task;
  EXPECT_EQ(ledger.balance(client), before + 20u - cycle_cost);
  EXPECT_EQ(net->stats().files_lost, 1u);
  EXPECT_EQ(net->stats().value_lost, 20u);
}

TEST_F(NetworkFixture, PartialCorruptionKeepsFileAlive) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  net->corrupt_sector_now(net->allocations().entry(id, 0).prev);
  net->advance_to(net->now() + 5 * params.proof_cycle);
  EXPECT_TRUE(net->file_exists(id));
  EXPECT_EQ(net->stats().files_lost, 0u);
}

TEST_F(NetworkFixture, CompensationShortfallBecomesLiability) {
  Params p = test_params();
  p.gamma_deposit = 0.001;  // deliberately under-collateralized
  build(p, 4, 4 * 1024);
  net->set_auto_prove(true);
  const FileId id = add_and_store(500, 100);  // cp = 20, value 100
  const TokenAmount client_before = ledger.balance(client);
  // Destroy the whole fleet: every replica is gone, but the confiscated
  // deposits cannot cover the value.
  for (SectorId s : sectors_) net->corrupt_sector_now(s);
  net->advance_to(net->now() + params.proof_cycle + 1);
  EXPECT_FALSE(net->file_exists(id));
  const auto lost = events_of<FileLost>();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_LT(lost[0].compensated_now, lost[0].value);
  EXPECT_GT(net->deposits().outstanding_liabilities(), 0u);
  // A later confiscation settles the liability FIFO.
  const AccountId fresh_provider = ledger.create_account(1'000'000);
  // Big enough that its confiscated deposit covers the whole shortfall.
  auto fresh = net->sector_register(fresh_provider, 1024 * 1024);
  ASSERT_TRUE(fresh.is_ok());
  net->corrupt_sector_now(fresh.value());
  EXPECT_EQ(net->deposits().outstanding_liabilities(), 0u);
  // Full value arrives net of the cycle's rent+gas deducted at CheckProof.
  const TokenAmount cycle_cost =
      params.rent_per_cycle(500, 20) + 2 * params.gas_per_task;
  EXPECT_EQ(ledger.balance(client), client_before + 100u - cycle_cost);
}

// ---------------------------------------------------------------------------
// Discard and rent
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, DiscardRemovesAtNextCheckProof) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  ASSERT_TRUE(net->file_discard(client, id).is_ok());
  EXPECT_TRUE(net->file_exists(id));  // still there until the check
  net->advance_to(net->now() + params.proof_cycle + 1);
  EXPECT_FALSE(net->file_exists(id));
  const auto discarded = events_of<FileDiscarded>();
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_FALSE(discarded[0].for_unpaid_rent);
  // Space is reclaimed.
  for (SectorId s : sectors_) {
    EXPECT_EQ(net->sectors().at(s).free_cap, net->sectors().at(s).capacity);
  }
  EXPECT_EQ(net->stats().files_discarded, 1u);
}

TEST_F(NetworkFixture, DiscardRequiresOwnership) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  EXPECT_EQ(net->file_discard(providers[0], id).code(),
            util::ErrorCode::permission_denied);
}

TEST_F(NetworkFixture, RentChargedEachCycleAndDistributed) {
  build(test_params());
  net->set_auto_prove(true);
  const TokenAmount client_before = ledger.balance(client);
  const FileId id = add_and_store(1000, 20);
  const TokenAmount after_add = ledger.balance(client);
  const TokenAmount upload_cost = client_before - after_add;
  // traffic fees flowed to providers; remaining cost is gas.
  EXPECT_GT(upload_cost, 0u);

  const TokenAmount rent = params.rent_per_cycle(1000, 4);
  net->advance_to(net->now() + params.proof_cycle + 1);  // one CheckProof
  EXPECT_EQ(ledger.balance(client),
            after_add - rent - 2 * params.gas_per_task);

  // After a full rent period the pool pays out to providers by capacity.
  net->advance_to(params.rent_period_cycles * params.proof_cycle + 1);
  EXPECT_FALSE(events_of<RentDistributed>().empty());
  EXPECT_TRUE(net->file_exists(id));
}

TEST_F(NetworkFixture, UnpaidRentDiscardsFile) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  // Drain the client to a balance below one cycle's rent+gas.
  const TokenAmount balance = ledger.balance(client);
  ASSERT_TRUE(ledger.transfer(client, providers[0], balance - 1).is_ok());
  net->advance_to(net->now() + params.proof_cycle + 1);
  EXPECT_FALSE(net->file_exists(id));
  const auto discarded = events_of<FileDiscarded>();
  ASSERT_EQ(discarded.size(), 1u);
  EXPECT_TRUE(discarded[0].for_unpaid_rent);
}

// ---------------------------------------------------------------------------
// Refresh (Auto_Refresh / Auto_CheckRefresh)
// ---------------------------------------------------------------------------

class RefreshFixture : public NetworkFixture {
 protected:
  static Params refresh_params() {
    Params p = test_params();
    p.avg_refresh = 1.0;  // refresh roughly every cycle
    return p;
  }

  /// Confirms any in-flight refresh transfers (plays the honest successor).
  void confirm_refreshes(FileId id) {
    for (ReplicaIndex i = 0; i < net->allocations().replica_count(id); ++i) {
      const AllocEntry& e = net->allocations().entry(id, i);
      if (e.state == AllocState::alloc && e.next != kNoSector &&
          e.prev != kNoSector) {
        const ProviderId owner = net->sectors().at(e.next).owner;
        ASSERT_TRUE(
            net->file_confirm(owner, id, i, e.next, {}, std::nullopt).is_ok());
      }
    }
  }
};

TEST_F(RefreshFixture, RefreshMovesReplicaWhenConfirmed) {
  build(refresh_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  // Drive cycles, confirming every requested handoff, until a refresh
  // completes.
  for (int step = 0; step < 200 && net->stats().refreshes_completed == 0;
       ++step) {
    const Time next = net->next_task_time();
    net->advance_to(next);
    confirm_refreshes(id);
  }
  EXPECT_GT(net->stats().refreshes_started, 0u);
  EXPECT_GT(net->stats().refreshes_completed, 0u);
  EXPECT_TRUE(net->file_exists(id));
  // Space accounting stays exact: total used == live replicas * size.
  ByteCount used = 0;
  for (SectorId s : sectors_) {
    const Sector& sec = net->sectors().at(s);
    if (sec.state == SectorState::normal) used += sec.capacity - sec.free_cap;
  }
  ByteCount expected = 0;
  for (ReplicaIndex i = 0; i < 4; ++i) {
    const AllocEntry& e = net->allocations().entry(id, i);
    if (e.prev != kNoSector && e.state != AllocState::corrupted) {
      expected += 1000;
    }
    if (e.next != kNoSector) expected += 1000;
  }
  EXPECT_EQ(used, expected);
}

TEST_F(RefreshFixture, FailedHandoffPunishesAndRetries) {
  build(refresh_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  // Never confirm refresh transfers: each CheckRefresh punishes the
  // successor and all holders, then retries.
  for (int step = 0; step < 60 && net->stats().refreshes_failed == 0; ++step) {
    net->advance_to(net->next_task_time());
  }
  EXPECT_GT(net->stats().refreshes_failed, 0u);
  EXPECT_GT(net->stats().punishments, 0u);
  const auto punished = events_of<ProviderPunished>();
  EXPECT_FALSE(punished.empty());
  EXPECT_TRUE(net->file_exists(id));  // the replica never left its holder
}

TEST_F(RefreshFixture, RefreshSkipsWhenTargetFull) {
  Params p = refresh_params();
  build(p, 2, 1024);  // two tight sectors
  net->set_auto_prove(true);
  const FileId id = add_and_store(800, 10);  // cp=2 fills both sectors
  for (int step = 0; step < 100 && net->stats().refresh_collisions == 0;
       ++step) {
    net->advance_to(net->next_task_time());
  }
  EXPECT_GT(net->stats().refresh_collisions, 0u);
  EXPECT_FALSE(events_of<RefreshSkipped>().empty());
  EXPECT_TRUE(net->file_exists(id));
}

// ---------------------------------------------------------------------------
// Sector disable drains via refresh
// ---------------------------------------------------------------------------

TEST_F(RefreshFixture, DisabledSectorDrainsAndExits) {
  build(refresh_params(), 6, 4 * 1024);
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  // Disable the sector holding replica 0.
  const SectorId victim = net->allocations().entry(id, 0).prev;
  const ProviderId owner = net->sectors().at(victim).owner;
  ASSERT_TRUE(net->sector_disable(owner, victim).is_ok());
  EXPECT_EQ(net->sectors().at(victim).state, SectorState::disabled);
  // Keep confirming handoffs; refreshes eventually move everything out and
  // the sector exits with a refund.
  for (int step = 0; step < 3000; ++step) {
    if (net->sectors().at(victim).state == SectorState::removed) break;
    net->advance_to(net->next_task_time());
    confirm_refreshes(id);
  }
  EXPECT_EQ(net->sectors().at(victim).state, SectorState::removed);
  EXPECT_FALSE(events_of<SectorRemoved>().empty());
}

// ---------------------------------------------------------------------------
// File_Get
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, FileGetListsLiveHolders) {
  build(test_params());
  net->set_auto_prove(true);
  const FileId id = add_and_store(1000, 20);
  auto holders = net->file_get(client, id);
  ASSERT_TRUE(holders.is_ok());
  EXPECT_EQ(holders.value().size(), 4u);
  // Corrupt one holder: every replica it hosted drops out of the list
  // (i.i.d. placement can put several replicas in one sector).
  const SectorId victim = holders.value()[0];
  const auto hosted = static_cast<std::size_t>(
      std::count(holders.value().begin(), holders.value().end(), victim));
  net->corrupt_sector_now(victim);
  auto holders2 = net->file_get(client, id);
  ASSERT_TRUE(holders2.is_ok());
  EXPECT_EQ(holders2.value().size(), 4u - hosted);
  EXPECT_EQ(events_of<RetrievalRequested>().size(), 2u);
}

// ---------------------------------------------------------------------------
// distinct_sectors ablation flag
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, DistinctSectorsPlacesReplicasApart) {
  Params p = test_params();
  p.distinct_sectors = true;
  build(p, 4, 16 * 1024);
  net->set_auto_prove(true);
  // Many 4-replica files over only 4 sectors: without the flag, duplicate
  // placements are near-certain; with it, each file must use all 4 sectors.
  for (int n = 0; n < 10; ++n) {
    const FileId id = add_and_store(500, 20);
    std::set<SectorId> used;
    for (ReplicaIndex i = 0; i < 4; ++i) {
      used.insert(net->allocations().entry(id, i).prev);
    }
    EXPECT_EQ(used.size(), 4u) << "file " << id;
  }
  EXPECT_GT(net->stats().add_resamples, 0u);
}

TEST_F(NetworkFixture, DistinctSectorsFailsWhenNotEnoughSectors) {
  Params p = test_params();
  p.distinct_sectors = true;
  build(p, 3, 16 * 1024);  // cp=4 > 3 sectors: can never place distinctly
  const auto result = net->file_add(client, {500, 20, {}});
  EXPECT_EQ(result.status().code(), util::ErrorCode::insufficient_space);
}

// ---------------------------------------------------------------------------
// §VI-B admission rebalancing
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, AdmissionRebalanceSwapsBackupsIn) {
  Params p = test_params();
  p.admission_rebalance = true;
  build(p, 4, 16 * 1024);
  net->set_auto_prove(true);
  // Store enough backups that the Poisson mean for a new equal-size sector
  // (~ entries/5) is comfortably positive.
  std::vector<FileId> files;
  for (int i = 0; i < 10; ++i) files.push_back(add_and_store(500, 20));
  const std::uint64_t refreshes_before = net->stats().refreshes_started;
  const AccountId newcomer = ledger.create_account(1'000'000);
  auto fresh = net->sector_register(newcomer, 16 * 1024);
  ASSERT_TRUE(fresh.is_ok());
  // §VI-B: registering triggered targeted refreshes into the new sector.
  EXPECT_GT(net->stats().refreshes_started, refreshes_before);
  bool any_inbound = false;
  for (FileId f : files) {
    for (ReplicaIndex i = 0; i < net->allocations().replica_count(f); ++i) {
      if (net->allocations().entry(f, i).next == fresh.value()) {
        any_inbound = true;
      }
    }
  }
  EXPECT_TRUE(any_inbound);
}

// ---------------------------------------------------------------------------
// Money conservation
// ---------------------------------------------------------------------------

TEST_F(NetworkFixture, TokensConservedThroughBusyScenario) {
  build(test_params(), 6, 4 * 1024);
  net->set_auto_prove(true);
  const TokenAmount initial = system_total();
  std::vector<FileId> files;
  for (int i = 0; i < 5; ++i) files.push_back(add_and_store(700, 20));
  net->advance_to(500);
  net->corrupt_sector_now(sectors_[0]);
  net->corrupt_sector_now(sectors_[1]);
  ASSERT_TRUE(net->file_discard(client, files[0]).is_ok());
  net->advance_to(2500);
  EXPECT_EQ(system_total(), initial);
  EXPECT_EQ(ledger.total_supply(), initial);
}

}  // namespace
}  // namespace fi::core
