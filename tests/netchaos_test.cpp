#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "adversary/spec.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "sim/net_model.h"
#include "snapshot/snapshot.h"
#include "util/binary_io.h"
#include "util/config.h"

/// Chaos suite for the simulated delivery network (PR 9):
///
///  * zero-latency equivalence — a sim-backed run with the all-zero
///    profile is byte-identical (report and state hash) to the
///    instantaneous loop, for in-code specs and shipped configs alike;
///  * partitions during refresh windows fire the Fig. 9 failure path;
///  * crash-restart outages past the ProofDeadline confiscate and
///    compensate with exact conservation, and healed regions resume
///    proving with no double-punishment;
///  * deadline-miss rates vary monotonically with injected latency;
///  * mid-partition snapshots round-trip byte-identically with messages
///    still in flight, and truncated net tails are rejected.
namespace fi {
namespace {

namespace fs = std::filesystem;

#ifndef FI_CONFIG_DIR
#error "FI_CONFIG_DIR must be defined by the build"
#endif

struct RunOutcome {
  std::string report_json;
  std::string state_hash;
};

RunOutcome run_outcome(scenario::ScenarioSpec spec,
                       bool force_sim_delivery = false) {
  scenario::ScenarioRunner runner(std::move(spec), force_sim_delivery);
  const std::string json = runner.run().to_json();
  return {json, snapshot::state_hash(runner)};
}

scenario::MetricsReport run_report(scenario::ScenarioSpec spec) {
  return scenario::ScenarioRunner(std::move(spec)).run();
}

/// A small spec exercising the whole instantaneous pipeline: churn with
/// discards, a corruption burst (confiscation + compensation), refresh
/// pressure, and a rent audit.
scenario::ScenarioSpec pipeline_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "netchaos_pipeline";
  spec.seed = 31337;
  spec.sectors = 80;
  spec.sector_units = 4;
  spec.initial_files = 120;
  spec.file_size_min = 1024;
  spec.file_size_max = 2048;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.avg_refresh = 8;
  spec.phases.push_back(scenario::PhaseSpec::make_churn(3, 10, 0.02));
  spec.phases.push_back(scenario::PhaseSpec::make_corrupt_burst(0.05, 2));
  spec.phases.push_back(scenario::PhaseSpec::make_idle(2));
  spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
  return spec;
}

/// Loads a shipped config and scales it down to unit-test size, keeping
/// its phase/adversary shape (mirrors the snapshot_test shrink).
scenario::ScenarioSpec shrunk_config_spec(const std::string& name) {
  auto loaded =
      util::Config::load((fs::path(FI_CONFIG_DIR) / name).string());
  EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  auto parsed = scenario::ScenarioSpec::from_config(loaded.value());
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  scenario::ScenarioSpec spec = std::move(parsed).value();
  spec.sectors = std::min<std::uint64_t>(spec.sectors, 80);
  spec.initial_files = std::min<std::uint64_t>(spec.initial_files, 120);
  for (scenario::PhaseSpec& phase : spec.phases) {
    phase.cycles = std::min<std::uint64_t>(phase.cycles, 6);
    phase.periods = std::min<std::uint64_t>(phase.periods, 1);
    phase.adds_per_cycle = std::min<std::uint64_t>(phase.adds_per_cycle, 8);
    phase.add_sectors = std::min<std::uint64_t>(phase.add_sectors, 10);
    phase.down_cycles = std::min(phase.down_cycles, phase.cycles);
  }
  for (adversary::AdversarySpec& adv : spec.adversaries) {
    adv.start_epoch = std::min<std::uint64_t>(adv.start_epoch, 1);
    adv.sectors = std::min<std::uint64_t>(adv.sectors, 6);
    adv.requests_per_epoch =
        std::min<std::uint64_t>(adv.requests_per_epoch, 12);
  }
  if (spec.traffic.enabled) {
    spec.traffic.requests_per_cycle =
        std::min<std::uint64_t>(spec.traffic.requests_per_cycle, 48);
    if (spec.traffic.defense_enabled) {
      spec.traffic.defense_warmup =
          std::min<std::uint64_t>(spec.traffic.defense_warmup, 2);
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Zero-latency equivalence
// ---------------------------------------------------------------------------

TEST(ZeroLatencyEquivalence, PipelineSpecByteIdentical) {
  // The sim-backed run with the all-zero profile must reproduce the
  // instantaneous loop byte for byte: same report JSON, same end-of-run
  // state hash. This is the property that lets the 13 pre-network golden
  // hashes stand unchanged while every transfer now rides the event core.
  const RunOutcome direct = run_outcome(pipeline_spec());
  const RunOutcome simmed =
      run_outcome(pipeline_spec(), /*force_sim_delivery=*/true);
  EXPECT_EQ(direct.report_json, simmed.report_json);
  EXPECT_EQ(direct.state_hash, simmed.state_hash);
}

TEST(ZeroLatencyEquivalence, ShippedConfigsByteIdentical) {
  // Shrunk shipped configs cover the interplay surfaces the in-code spec
  // does not: refresh sabotage (transfer refusal at delivery time),
  // retrieval traffic, and proof withholding.
  for (const std::string name :
       {"smoke.cfg", "refresh_saboteur.cfg", "retrieval_zipf.cfg",
        "proof_withholder.cfg"}) {
    const RunOutcome direct = run_outcome(shrunk_config_spec(name));
    const RunOutcome simmed =
        run_outcome(shrunk_config_spec(name), /*force_sim_delivery=*/true);
    EXPECT_EQ(direct.report_json, simmed.report_json) << name;
    EXPECT_EQ(direct.state_hash, simmed.state_hash) << name;
  }
}

// ---------------------------------------------------------------------------
// Partition chaos: the Fig. 9 failure path
// ---------------------------------------------------------------------------

/// Two regions under heavy refresh pressure; region 1 partitioned for
/// `partition_cycles` (proof_deadline defaults to three proof cycles).
scenario::ScenarioSpec partition_spec(std::uint64_t partition_cycles) {
  scenario::ScenarioSpec spec;
  spec.name = "netchaos_partition";
  spec.seed = 909;
  spec.sectors = 80;
  spec.sector_units = 4;
  spec.initial_files = 120;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.avg_refresh = 3;
  spec.params.delay_per_kib = 30;
  spec.network.enabled = true;
  spec.network.regions = 2;
  spec.network.base_latency = 2;
  spec.network.region_latency = 5;
  spec.network.jitter = 3;
  spec.phases.push_back(scenario::PhaseSpec::make_idle(2));
  spec.phases.push_back(scenario::PhaseSpec::make_partition(
      /*region=*/1, partition_cycles));
  spec.phases.push_back(scenario::PhaseSpec::make_idle(6));
  spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
  return spec;
}

TEST(NetChaos, PartitionDuringRefreshFiresFig9Path) {
  const scenario::MetricsReport report = run_report(partition_spec(2));
  // Refresh handoffs crossing the cut miss their deadlines: receiver and
  // live holders punished, refresh retried with a fresh draw (Fig. 9).
  EXPECT_GT(report.network.dropped_partition, 0u);
  EXPECT_GT(report.totals.refreshes_failed, 0u);
  EXPECT_GT(report.totals.punishments, 0u);
  // Every miss is the network's fault — no adversary is configured.
  EXPECT_GT(report.network.deadline_misses_network, 0u);
  EXPECT_EQ(report.network.deadline_misses_malice, 0u);
  // Sabotage delays placement refresh; it cannot destroy data.
  EXPECT_EQ(report.totals.files_lost, 0u);
  EXPECT_TRUE(report.rent_conserved);
}

TEST(NetChaos, HealedPartitionResumesWithoutDoublePunishment) {
  // Two cycles dark is under the ProofDeadline (three proof cycles): the
  // region collects late-proof punishments while cut off, but healing
  // must not let confiscation fire afterwards — no file lost, nothing
  // compensated, and the run settles conserved.
  const scenario::MetricsReport report = run_report(partition_spec(2));
  EXPECT_EQ(report.totals.files_lost, 0u);
  EXPECT_EQ(report.totals.value_lost, 0u);
  EXPECT_EQ(report.totals.value_compensated, 0u);
  EXPECT_TRUE(report.rent_conserved);
  // The healed region resumes delivery: traffic into region 1 after the
  // heal shows up as deliveries (the partition phase plus six idle cycles
  // of refresh pressure give it plenty to receive).
  ASSERT_EQ(report.network.per_region.size(), 2u);
  EXPECT_GT(report.network.per_region[1].delivered, 0u);
}

// ---------------------------------------------------------------------------
// Crash-restart chaos: ProofDeadline confiscation
// ---------------------------------------------------------------------------

TEST(NetChaos, CrashRestartPastDeadlineConfiscatesAndCompensates) {
  scenario::ScenarioSpec spec;
  spec.name = "netchaos_crash";
  spec.seed = 1717;
  spec.sectors = 90;
  spec.sector_units = 4;
  spec.initial_files = 150;
  spec.file_size_min = 1024;
  spec.file_size_max = 2048;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.delay_per_kib = 30;
  spec.network.enabled = true;
  spec.network.regions = 3;
  spec.network.base_latency = 2;
  spec.network.region_latency = 4;
  spec.phases.push_back(scenario::PhaseSpec::make_idle(2));
  // Four cycles down > ProofDeadline (three proof cycles): §IV-B fires.
  spec.phases.push_back(
      scenario::PhaseSpec::make_outage(/*region=*/2, /*down_cycles=*/4,
                                       /*cycles=*/8));
  spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
  const scenario::MetricsReport report = run_report(std::move(spec));

  // The dark region missed enough proof windows for confiscation: files
  // lost, every lost token compensated from the seized deposits, and the
  // books balance exactly.
  EXPECT_GT(report.network.dropped_down, 0u);
  EXPECT_GT(report.totals.files_lost, 0u);
  EXPECT_GT(report.totals.value_lost, 0u);
  EXPECT_EQ(report.totals.value_lost, report.totals.value_compensated);
  EXPECT_TRUE(report.rent_conserved);
  EXPECT_EQ(report.outstanding_liabilities, 0u);
  // The outage, not malice, caused every miss.
  EXPECT_EQ(report.network.deadline_misses_malice, 0u);
  // After the restart the region receives again.
  ASSERT_EQ(report.network.per_region.size(), 3u);
  EXPECT_GT(report.network.per_region[2].delivered, 0u);
}

// ---------------------------------------------------------------------------
// Deadline-miss monotonicity in injected latency
// ---------------------------------------------------------------------------

TEST(NetChaos, DeadlineMissesGrowMonotonicallyWithLatency) {
  // DelayPerSize × size gives 1-KiB transfers a 30-tick window here; the
  // sweep crosses it: base 0 keeps worst-case latency (base + region hop 6
  // + jitter 12 = 18) inside the window, base 20 puts the jitter band
  // astride the deadline (26..38), and base 120 puts everything past it.
  // The *miss rate* must grow strictly — the acceptance criterion pinning
  // that injected latency, not nondeterminism, drives the failure rate.
  // (Rates, not counts: failed uploads resample and retry, so the total
  // message volume itself varies across tiers.)
  std::vector<double> miss_rate;
  std::vector<std::uint64_t> protocol_failures;
  for (const Time base : {Time{0}, Time{20}, Time{120}}) {
    scenario::ScenarioSpec spec;
    spec.name = "netchaos_latency";
    spec.seed = 4242;
    spec.sectors = 60;
    spec.sector_units = 4;
    spec.initial_files = 90;
    spec.file_size_min = 1024;
    spec.file_size_max = 1024;
    spec.file_value = 10;
    spec.params.min_value = 10;
    spec.params.avg_refresh = 5;
    spec.params.delay_per_kib = 30;
    spec.network.enabled = true;
    spec.network.regions = 2;
    spec.network.base_latency = base;
    spec.network.region_latency = 6;
    spec.network.jitter = 12;
    spec.phases.push_back(scenario::PhaseSpec::make_idle(6));
    spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
    const scenario::MetricsReport report = run_report(std::move(spec));
    ASSERT_GT(report.network.sent, 0u);
    miss_rate.push_back(
        static_cast<double>(report.network.deadline_misses_network) /
        static_cast<double>(report.network.sent));
    protocol_failures.push_back(report.totals.upload_failures +
                                report.totals.refreshes_failed);
  }
  EXPECT_EQ(miss_rate[0], 0.0);
  EXPECT_LT(miss_rate[0], miss_rate[1]);
  EXPECT_LT(miss_rate[1], miss_rate[2]);
  EXPECT_EQ(miss_rate[2], 1.0);
  EXPECT_LE(protocol_failures[0], protocol_failures[1]);
  EXPECT_GT(protocol_failures[2], protocol_failures[0]);
}

// ---------------------------------------------------------------------------
// Malice vs network attribution
// ---------------------------------------------------------------------------

TEST(NetChaos, RefusalAttributedToMaliceNotNetwork) {
  // A refresh saboteur on a latency-free simulated network: every miss is
  // a refusal at delivery time, so the attribution split must charge
  // malice, not the network.
  scenario::ScenarioSpec spec;
  spec.name = "netchaos_malice";
  spec.seed = 808;
  spec.sectors = 60;
  spec.sector_units = 4;
  spec.initial_files = 90;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.avg_refresh = 3;
  spec.network.enabled = true;
  spec.network.regions = 2;
  adversary::AdversarySpec saboteur;
  saboteur.kind = adversary::StrategyKind::refresh_saboteur;
  saboteur.start_epoch = 1;
  saboteur.fraction = 0.3;
  saboteur.duration = 4;
  spec.adversaries.push_back(saboteur);
  spec.phases.push_back(scenario::PhaseSpec::make_idle(6));
  spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
  const scenario::MetricsReport report = run_report(std::move(spec));
  EXPECT_GT(report.network.deadline_misses_malice, 0u);
  EXPECT_EQ(report.network.deadline_misses_network, 0u);
  EXPECT_EQ(report.totals.files_lost, 0u);
}

// ---------------------------------------------------------------------------
// Mid-partition snapshot round-trip
// ---------------------------------------------------------------------------

/// Latency longer than a proof cycle guarantees messages span cycle
/// boundaries, so the mid-partition checkpoint carries a non-empty
/// in-flight set through the snapshot.
scenario::ScenarioSpec in_flight_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "netchaos_inflight";
  spec.seed = 555;
  spec.sectors = 60;
  spec.sector_units = 4;
  spec.initial_files = 90;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.avg_refresh = 5;
  spec.params.delay_per_kib = 200;
  spec.network.enabled = true;
  spec.network.regions = 2;
  spec.network.base_latency = 150;
  spec.network.jitter = 20;
  spec.phases.push_back(scenario::PhaseSpec::make_idle(1));
  spec.phases.push_back(scenario::PhaseSpec::make_partition(1, 4));
  spec.phases.push_back(scenario::PhaseSpec::make_idle(3));
  spec.phases.push_back(scenario::PhaseSpec::make_rent_audit(1));
  return spec;
}

TEST(NetSnapshot, MidPartitionRoundTripIsByteIdentical) {
  const RunOutcome uninterrupted = run_outcome(in_flight_spec());

  const fs::path path =
      fs::path(::testing::TempDir()) / "fi_netchaos_midpartition.fisnap";
  bool saved_in_flight = false;
  {
    scenario::ScenarioRunner saver(in_flight_spec());
    saver.set_epoch_callback([&](const scenario::ScenarioRunner& at) {
      if (at.epoch() != 3) return;  // inside the partition phase
      ASSERT_NE(at.netmodel(), nullptr);
      saved_in_flight = at.netmodel()->in_flight() > 0;
      const auto status = snapshot::save_to_file(at, path.string());
      ASSERT_TRUE(status.is_ok()) << status.to_string();
    });
    EXPECT_EQ(saver.run().to_json(), uninterrupted.report_json);
  }
  ASSERT_TRUE(fs::exists(path));
  // The checkpoint really did carry live messages across the boundary.
  EXPECT_TRUE(saved_in_flight);

  auto resumed = snapshot::resume_from_file(path.string(), /*workers=*/8);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ((*resumed.value()).run().to_json(), uninterrupted.report_json);
  EXPECT_EQ(snapshot::state_hash(*resumed.value()), uninterrupted.state_hash);
  fs::remove(path);
}

TEST(NetSnapshot, TruncatedNetTailIsRejected) {
  // The net tail is the last thing in the body; chopping bytes off the
  // end must fail resume with a malformed-body error, never a silent
  // partial restore. (The file-level digest catches this first in
  // practice; this drives the reader path the digest does not cover.)
  scenario::ScenarioRunner runner(in_flight_spec());
  (void)runner.run();
  const std::vector<std::uint8_t> body = snapshot::encode_state(runner);
  ASSERT_GT(body.size(), 16u);
  for (const std::size_t cut : {std::size_t{1}, std::size_t{7},
                                std::size_t{16}}) {
    util::BinaryReader reader(
        std::span<const std::uint8_t>(body.data(), body.size() - cut));
    auto resumed = scenario::ScenarioRunner::resume(in_flight_spec(), reader);
    ASSERT_FALSE(resumed.is_ok()) << "cut=" << cut;
    EXPECT_NE(resumed.status().to_string().find("malformed"),
              std::string::npos)
        << resumed.status().to_string();
  }
}

}  // namespace
}  // namespace fi
