#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/agents.h"

/// Chaos suite: long agent-level runs with random failures — crashes,
/// transient outages, selfish behaviour, discards — asserting global
/// invariants at the end. This exercises the full stack (PoRep disabled for
/// speed, real transfer/confirm/prove/refresh machinery on).
namespace fi::core {
namespace {

Params chaos_params() {
  Params p;
  p.min_capacity = 8 * 1024;
  p.min_value = 10;
  p.k = 3;
  p.cap_para = 20.0;
  p.gamma_deposit = 0.3;
  p.proof_cycle = 50;
  p.proof_due = 75;
  p.proof_deadline = 150;
  p.avg_refresh = 4.0;
  p.delay_per_kib = 5;
  p.min_transfer_window = 5;
  p.verify_proofs = false;  // agents fall back to trusted proofs
  p.cr_size = 2048;
  return p;
}

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, SystemSurvivesRandomFailures) {
  const std::uint64_t seed = GetParam();
  Simulation sim(chaos_params(), seed);
  util::Xoshiro256 rng(seed * 7919 + 3);

  ClientAgent& client = sim.add_client(10'000'000);
  std::vector<ProviderAgent*> providers;
  for (int i = 0; i < 8; ++i) {
    ProviderAgent& p = sim.add_provider(100'000'000);
    ASSERT_TRUE(p.register_sector(4 * 8 * 1024).is_ok());
    providers.push_back(&p);
  }

  auto total_tokens = [&] {
    TokenAmount t = sim.ledger().balance(client.account());
    for (ProviderAgent* p : providers) {
      t += sim.ledger().balance(p->account());
    }
    auto& net = sim.network();
    t += sim.ledger().balance(net.escrow_account());
    t += sim.ledger().balance(net.pool_account());
    t += sim.ledger().balance(net.rent_pool_account());
    t += sim.ledger().balance(net.gas_sink_account());
    t += sim.ledger().balance(net.traffic_escrow_account());
    return t;
  };
  const TokenAmount initial = total_tokens();

  std::vector<FileId> files;
  for (int step = 0; step < 60; ++step) {
    switch (rng.uniform_below(8)) {
      case 0:
      case 1: {  // store a file
        std::vector<std::uint8_t> data(200 + rng.uniform_below(1500));
        for (auto& b : data) b = static_cast<std::uint8_t>(rng());
        auto f = client.store_file(std::move(data),
                                   10 * (1 + rng.uniform_below(2)));
        if (f.is_ok()) files.push_back(f.value());
        break;
      }
      case 2: {  // discard something
        if (!files.empty()) {
          const FileId f = files[rng.uniform_below(files.size())];
          if (sim.network().file_exists(f) && client.owns(f)) {
            (void)client.discard_file(f);
          }
        }
        break;
      }
      case 3: {  // a provider crashes for good (sometimes)
        if (rng.uniform_below(6) == 0) {
          providers[rng.uniform_below(providers.size())]->crash();
        }
        break;
      }
      case 4: {  // transient outage: dark past ProofDue, back before deadline
        ProviderAgent* p = providers[rng.uniform_below(providers.size())];
        if (!p->crashed() && !p->sectors().empty()) {
          const SectorId s = p->sectors()[0];
          sim.network().corrupt_sector_physical(s);
          sim.schedule_after(2 * chaos_params().proof_cycle, [&sim, s] {
            sim.network().restore_sector_physical(s);
          });
        }
        break;
      }
      case 5: {  // toggle selfishness
        ProviderAgent* p = providers[rng.uniform_below(providers.size())];
        p->serve_retrieval = !p->serve_retrieval;
        break;
      }
      default: {  // let time pass
        sim.run_until(sim.now() + 20 + rng.uniform_below(100));
        break;
      }
    }
  }
  sim.run_until(sim.now() + 10 * chaos_params().proof_cycle);

  // ---- Invariants ---------------------------------------------------------
  // 1. Money conservation, always.
  EXPECT_EQ(total_tokens(), initial);

  // 2. Every file is in a coherent terminal or live state, and every loss
  //    event carries a compensation record.
  std::map<FileId, int> lost_events;
  TokenAmount compensated = 0, lost_value = 0;
  for (const Event& e : sim.event_log()) {
    if (const auto* lost = std::get_if<FileLost>(&e)) {
      ++lost_events[lost->file];
      compensated += lost->compensated_now;
      lost_value += lost->value;
    }
  }
  for (const auto& [file, count] : lost_events) {
    EXPECT_EQ(count, 1) << "file " << file << " lost twice";
    EXPECT_FALSE(sim.network().file_exists(file));
  }
  EXPECT_EQ(compensated + sim.network().deposits().outstanding_liabilities(),
            lost_value);

  // 3. Live files have live replicas: no entry points at a corrupted
  //    sector while claiming to be normal.
  for (FileId f : files) {
    if (!sim.network().file_exists(f)) continue;
    const auto& allocs = sim.network().allocations();
    for (ReplicaIndex i = 0; i < allocs.replica_count(f); ++i) {
      const AllocEntry& e = allocs.entry(f, i);
      if (e.state == AllocState::normal) {
        EXPECT_NE(sim.network().sectors().at(e.prev).state,
                  SectorState::corrupted)
            << "file " << f << " replica " << i;
      }
    }
  }

  // 4. DRep invariants hold on every surviving sector.
  for (ProviderAgent* p : providers) {
    if (p->crashed()) continue;
    for (SectorId s : p->sectors()) {
      if (sim.network().sectors().at(s).state == SectorState::corrupted) {
        continue;
      }
      EXPECT_TRUE(p->drep(s).invariant_holds()) << "sector " << s;
    }
  }

  // 5. Whatever survived is still retrievable (if any cooperative holder
  //    remains).
  for (ProviderAgent* p : providers) p->serve_retrieval = true;
  int checked = 0;
  for (FileId f : files) {
    if (!sim.network().file_exists(f) || !client.owns(f)) continue;
    if (checked >= 3) break;  // keep runtime bounded
    ++checked;
    bool done = false, ok = false;
    client.retrieve(f, [&](bool success) {
      done = true;
      ok = success;
    });
    sim.run_until(sim.now() + 300);
    EXPECT_TRUE(done);
    EXPECT_TRUE(ok) << "file " << f << " unretrievable despite surviving";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace fi::core
