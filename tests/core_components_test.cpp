#include <gtest/gtest.h>

#include "core/alloc_table.h"
#include "core/deposit.h"
#include "core/drep.h"
#include "core/params.h"
#include "core/pending_list.h"
#include "core/sector.h"
#include "core/subnet.h"
#include "util/stats.h"

namespace fi::core {
namespace {

Params small_params() {
  Params p;
  p.min_capacity = 1024;
  p.min_value = 10;
  p.k = 3;
  p.cap_para = 10.0;
  p.gamma_deposit = 0.05;
  p.cr_size = 256;
  return p;
}

// ---------------------------------------------------------------------------
// Params
// ---------------------------------------------------------------------------

TEST(ParamsTest, ReplicaCountFollowsValue) {
  const Params p = small_params();
  EXPECT_EQ(p.replica_count(10), 3u);   // k * 1
  EXPECT_EQ(p.replica_count(50), 15u);  // k * 5
  EXPECT_THROW((void)p.replica_count(15), util::InvariantViolation);
  EXPECT_THROW((void)p.replica_count(0), util::InvariantViolation);
}

TEST(ParamsTest, DepositProportionalToCapacity) {
  const Params p = small_params();
  // deposit = units * gamma * capPara * minValue = units * 0.05*10*10 = 5/unit
  EXPECT_EQ(p.sector_deposit(1024), 5u);
  EXPECT_EQ(p.sector_deposit(4 * 1024), 20u);
}

TEST(ParamsTest, DepositRoundsUp) {
  Params p = small_params();
  p.gamma_deposit = 0.033;  // 3.3 per unit -> 4
  EXPECT_EQ(p.sector_deposit(1024), 4u);
}

TEST(ParamsTest, ValidateRejectsBadConfig) {
  Params p = small_params();
  p.proof_deadline = p.proof_due;  // must be strictly greater
  EXPECT_THROW(p.validate(), util::InvariantViolation);
  p = small_params();
  p.cr_size = p.min_capacity + 1;
  EXPECT_THROW(p.validate(), util::InvariantViolation);
}

TEST(ParamsTest, TransferWindowScalesWithSize) {
  const Params p = small_params();
  EXPECT_EQ(p.transfer_window(1), p.min_transfer_window);
  EXPECT_EQ(p.transfer_window(10 * 1024), 10u * p.delay_per_kib);
}

// ---------------------------------------------------------------------------
// SectorTable
// ---------------------------------------------------------------------------

TEST(SectorTableTest, RegisterValidatesCapacity) {
  const Params p = small_params();
  SectorTable table(p);
  EXPECT_FALSE(table.register_sector(1, 0, 0).is_ok());
  EXPECT_FALSE(table.register_sector(1, 1000, 0).is_ok());  // not a multiple
  const auto id = table.register_sector(1, 2048, 5);
  ASSERT_TRUE(id.is_ok());
  const Sector& s = table.at(id.value());
  EXPECT_EQ(s.capacity, 2048u);
  EXPECT_EQ(s.free_cap, 2048u);
  EXPECT_EQ(s.registered_at, 5u);
  EXPECT_EQ(s.state, SectorState::normal);
}

TEST(SectorTableTest, RandomSectorWeightedByCapacity) {
  const Params p = small_params();
  SectorTable table(p);
  ASSERT_TRUE(table.register_sector(1, 1024, 0).is_ok());       // weight 1
  ASSERT_TRUE(table.register_sector(2, 3 * 1024, 0).is_ok());   // weight 3
  util::Xoshiro256 rng(1);
  std::vector<std::uint64_t> counts(2, 0);
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[table.random_sector(rng).value()];
  }
  const std::vector<double> expected{kSamples * 0.25, kSamples * 0.75};
  EXPECT_LT(util::chi_squared_statistic(counts, expected), 15.1);  // 1 dof
}

TEST(SectorTableTest, DisabledAndCorruptedNeverSampled) {
  const Params p = small_params();
  SectorTable table(p);
  const SectorId a = table.register_sector(1, 1024, 0).value();
  const SectorId b = table.register_sector(2, 1024, 0).value();
  const SectorId c = table.register_sector(3, 1024, 0).value();
  ASSERT_TRUE(table.disable(a).is_ok());
  ASSERT_TRUE(table.mark_corrupted(b));
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.random_sector(rng).value(), c);
  }
}

TEST(SectorTableTest, NoNormalSectorsFailsSampling) {
  const Params p = small_params();
  SectorTable table(p);
  util::Xoshiro256 rng(3);
  EXPECT_FALSE(table.random_sector(rng).is_ok());
  const SectorId a = table.register_sector(1, 1024, 0).value();
  ASSERT_TRUE(table.mark_corrupted(a));
  EXPECT_FALSE(table.random_sector(rng).is_ok());
}

TEST(SectorTableTest, ReserveReleaseAccounting) {
  const Params p = small_params();
  SectorTable table(p);
  const SectorId s = table.register_sector(1, 2048, 0).value();
  ASSERT_TRUE(table.reserve(s, 1500).is_ok());
  EXPECT_EQ(table.at(s).free_cap, 548u);
  EXPECT_EQ(table.reserve(s, 600).code(),
            util::ErrorCode::insufficient_space);
  table.release(s, 1500);
  EXPECT_EQ(table.at(s).free_cap, 2048u);
}

TEST(SectorTableTest, ReleaseOnCorruptedIsNoOp) {
  const Params p = small_params();
  SectorTable table(p);
  const SectorId s = table.register_sector(1, 2048, 0).value();
  ASSERT_TRUE(table.reserve(s, 1000).is_ok());
  table.mark_corrupted(s);
  table.release(s, 1000);  // dead space is not reusable
  EXPECT_EQ(table.at(s).free_cap, 1048u);
}

TEST(SectorTableTest, DisableLifecycle) {
  const Params p = small_params();
  SectorTable table(p);
  const SectorId s = table.register_sector(1, 1024, 0).value();
  table.add_ref(s);
  ASSERT_TRUE(table.disable(s).is_ok());
  EXPECT_EQ(table.at(s).state, SectorState::disabled);
  EXPECT_FALSE(table.disable(s).is_ok());  // idempotence rejected
  EXPECT_FALSE(table.reserve(s, 10).is_ok());  // no new data
  table.drop_ref(s);
  table.mark_removed(s);
  EXPECT_EQ(table.at(s).state, SectorState::removed);
}

TEST(SectorTableTest, CapacityTotals) {
  const Params p = small_params();
  SectorTable table(p);
  ASSERT_TRUE(table.register_sector(1, 1024, 0).is_ok());
  const SectorId b = table.register_sector(2, 2048, 0).value();
  ASSERT_TRUE(table.register_sector(3, 4096, 0).is_ok());
  table.mark_corrupted(b);
  EXPECT_EQ(table.total_capacity(SectorState::normal), 5120u);
  EXPECT_EQ(table.total_capacity(SectorState::corrupted), 2048u);
  EXPECT_EQ(table.live_capacity(), 5120u);
}

TEST(SectorTableTest, RentableUnitsTrackLifecycle) {
  const Params p = small_params();  // min_capacity = 1024
  SectorTable table(p);
  EXPECT_EQ(table.rentable_units(), 0u);
  const SectorId a = table.register_sector(1, 1024, 0).value();
  const SectorId b = table.register_sector(2, 3072, 0).value();
  EXPECT_EQ(table.rentable_units(), 4u);
  // Disabled sectors still hold data and still earn rent.
  ASSERT_TRUE(table.disable(a).is_ok());
  EXPECT_EQ(table.rentable_units(), 4u);
  EXPECT_EQ(table.total_capacity(SectorState::disabled), 1024u);
  // Corrupted and removed sectors stop earning.
  table.mark_corrupted(b);
  EXPECT_EQ(table.rentable_units(), 1u);
  table.mark_removed(a);
  EXPECT_EQ(table.rentable_units(), 0u);
  EXPECT_EQ(table.total_capacity(SectorState::removed), 1024u);
  EXPECT_EQ(table.total_capacity(SectorState::corrupted), 3072u);
  EXPECT_EQ(table.live_capacity(), 0u);
}

// ---------------------------------------------------------------------------
// AllocTable
// ---------------------------------------------------------------------------

TEST(AllocTableTest, CreateAndQueryEntries) {
  AllocTable table;
  table.create_file(1, 3);
  EXPECT_TRUE(table.has_file(1));
  EXPECT_EQ(table.replica_count(1), 3u);
  const AllocEntry& e = table.entry(1, 0);
  EXPECT_EQ(e.prev, kNoSector);
  EXPECT_EQ(e.next, kNoSector);
  EXPECT_EQ(e.state, AllocState::alloc);
  EXPECT_EQ(e.last, kNoTime);
}

TEST(AllocTableTest, ReverseIndexesTrackLinks) {
  AllocTable table;
  table.create_file(1, 2);
  table.create_file(2, 1);
  table.set_next(1, 0, 7);
  table.set_next(1, 1, 7);
  table.set_next(2, 0, 7);
  EXPECT_EQ(table.entries_with_next(7).size(), 3u);
  table.set_prev(1, 0, 7);
  table.set_next(1, 0, kNoSector);
  EXPECT_EQ(table.entries_with_next(7).size(), 2u);
  EXPECT_EQ(table.entries_with_prev(7).size(), 1u);
  table.remove_file(1);
  EXPECT_EQ(table.entries_with_next(7).size(), 1u);
  EXPECT_TRUE(table.entries_with_prev(7).empty());
}

TEST(AllocTableTest, NormalSamplerTracksStateTransitions) {
  AllocTable table;
  util::Xoshiro256 rng(4);
  table.create_file(1, 2);
  EXPECT_EQ(table.normal_entry_count(), 0u);
  EXPECT_FALSE(table.random_normal_entry(rng).has_value());
  table.set_state(1, 0, AllocState::normal);
  table.set_state(1, 1, AllocState::normal);
  EXPECT_EQ(table.normal_entry_count(), 2u);
  table.set_state(1, 0, AllocState::alloc);
  EXPECT_EQ(table.normal_entry_count(), 1u);
  const auto key = table.random_normal_entry(rng);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, (EntryKey{1, 1}));
  table.remove_file(1);
  EXPECT_EQ(table.normal_entry_count(), 0u);
}

TEST(AllocTableTest, SamplerUniformOverNormalEntries) {
  AllocTable table;
  table.create_file(1, 4);
  for (ReplicaIndex i = 0; i < 4; ++i) table.set_state(1, i, AllocState::normal);
  util::Xoshiro256 rng(5);
  std::vector<std::uint64_t> counts(4, 0);
  constexpr int kSamples = 40'000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[table.random_normal_entry(rng)->second];
  }
  const std::vector<double> expected(4, kSamples / 4.0);
  EXPECT_LT(util::chi_squared_statistic(counts, expected), 21.1);
}

TEST(AllocTableTest, DuplicateCreateRejected) {
  AllocTable table;
  table.create_file(1, 1);
  EXPECT_THROW(table.create_file(1, 1), util::InvariantViolation);
}

TEST(AllocTableTest, IndexViewsMatchCopiesWithoutAllocation) {
  AllocTable table;
  table.create_file(1, 3);
  table.set_next(1, 0, 5);
  table.set_next(1, 1, 5);
  table.set_prev(1, 2, 5);
  EXPECT_EQ(table.count_with_next(5), 2u);
  EXPECT_EQ(table.count_with_prev(5), 1u);
  EXPECT_EQ(table.count_with_prev(6), 0u);
  EXPECT_TRUE(table.with_prev(6).empty());
  // The span and the copying accessor expose the same slice.
  const auto view = table.with_next(5);
  const auto copy = table.entries_with_next(5);
  ASSERT_EQ(view.size(), copy.size());
  for (std::size_t i = 0; i < view.size(); ++i) EXPECT_EQ(view[i], copy[i]);
}

TEST(AllocTableTest, SwapEraseIndexSurvivesInterleavedRelinks) {
  AllocTable table;
  table.create_file(1, 4);
  table.create_file(2, 2);
  for (ReplicaIndex i = 0; i < 4; ++i) table.set_prev(1, i, 9);
  table.set_prev(2, 0, 9);
  // Remove from the middle (swap-erase moves the tail key) and relink.
  table.set_prev(1, 1, 3);
  table.set_prev(1, 2, kNoSector);
  EXPECT_EQ(table.count_with_prev(9), 3u);
  EXPECT_EQ(table.count_with_prev(3), 1u);
  table.set_prev(1, 1, 9);  // back again
  EXPECT_EQ(table.count_with_prev(9), 4u);
  EXPECT_EQ(table.count_with_prev(3), 0u);
  table.remove_file(1);
  EXPECT_EQ(table.count_with_prev(9), 1u);
  EXPECT_EQ(table.entries_with_prev(9), (std::vector<EntryKey>{{2, 0}}));
}

// ---------------------------------------------------------------------------
// PendingList
// ---------------------------------------------------------------------------

TEST(PendingListTest, PopsDueInOrder) {
  PendingList list;
  list.schedule(30, {TaskKind::check_proof, 3, 0});
  list.schedule(10, {TaskKind::check_alloc, 1, 0});
  list.schedule(20, {TaskKind::check_refresh, 2, 1});
  EXPECT_EQ(list.next_time(), 10u);
  const auto due = list.pop_due(20);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].second.file, 1u);
  EXPECT_EQ(due[1].second.file, 2u);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.next_time(), 30u);
}

TEST(PendingListTest, InsertionOrderPreservedWithinTimestamp) {
  PendingList list;
  for (FileId f = 0; f < 10; ++f) list.schedule(5, {TaskKind::check_proof, f, 0});
  const auto due = list.pop_due(5);
  for (FileId f = 0; f < 10; ++f) EXPECT_EQ(due[f].second.file, f);
}

TEST(PendingListTest, EmptyListReportsNoTime) {
  PendingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.next_time(), kNoTime);
  EXPECT_TRUE(list.pop_due(100).empty());
}

// ---------------------------------------------------------------------------
// DepositBook
// ---------------------------------------------------------------------------

struct DepositFixture : ::testing::Test {
  ledger::Ledger ledger;
  AccountId escrow = ledger.create_account();
  AccountId pool = ledger.create_account();
  AccountId owner = ledger.create_account(1000);
  AccountId client = ledger.create_account(0);
  DepositBook book{ledger, escrow, pool};
};

TEST_F(DepositFixture, PledgeLocksDeposit) {
  ASSERT_TRUE(book.pledge(1, owner, 400).is_ok());
  EXPECT_EQ(ledger.balance(owner), 600u);
  EXPECT_EQ(book.escrow_balance(), 400u);
  EXPECT_EQ(book.remaining(1), 400u);
}

TEST_F(DepositFixture, PledgeFailsOnInsufficientFunds) {
  EXPECT_FALSE(book.pledge(1, owner, 2000).is_ok());
  EXPECT_EQ(ledger.balance(owner), 1000u);
}

TEST_F(DepositFixture, PunishMovesBasisPoints) {
  ASSERT_TRUE(book.pledge(1, owner, 1000).is_ok());
  EXPECT_EQ(book.punish(1, 100), 10u);  // 1%
  EXPECT_EQ(book.remaining(1), 990u);
  EXPECT_EQ(book.pool_balance(), 10u);
  // Punishing again slashes 1% of the *remaining* deposit.
  EXPECT_EQ(book.punish(1, 1000), 99u);
  EXPECT_EQ(book.remaining(1), 891u);
}

TEST_F(DepositFixture, ConfiscateTakesEverything) {
  ASSERT_TRUE(book.pledge(1, owner, 700).is_ok());
  EXPECT_EQ(book.confiscate(1), 700u);
  EXPECT_EQ(book.remaining(1), 0u);
  EXPECT_EQ(book.pool_balance(), 700u);
  EXPECT_EQ(book.total_confiscated(), 700u);
  EXPECT_EQ(book.confiscate(1), 0u);  // idempotent
}

TEST_F(DepositFixture, RefundReturnsRemainder) {
  ASSERT_TRUE(book.pledge(1, owner, 500).is_ok());
  book.punish(1, 1000);  // 10% -> 50 slashed
  EXPECT_EQ(book.refund(1), 450u);
  EXPECT_EQ(ledger.balance(owner), 950u);
  EXPECT_EQ(book.escrow_balance(), 0u);
}

TEST_F(DepositFixture, CompensationPaysFromPool) {
  ASSERT_TRUE(book.pledge(1, owner, 500).is_ok());
  book.confiscate(1);
  EXPECT_EQ(book.compensate(client, 300), 300u);
  EXPECT_EQ(ledger.balance(client), 300u);
  EXPECT_EQ(book.pool_balance(), 200u);
  EXPECT_EQ(book.outstanding_liabilities(), 0u);
}

TEST_F(DepositFixture, ShortfallBecomesLiabilitySettledLater) {
  ASSERT_TRUE(book.pledge(1, owner, 100).is_ok());
  ASSERT_TRUE(book.pledge(2, owner, 400).is_ok());
  book.confiscate(1);  // pool = 100
  EXPECT_EQ(book.compensate(client, 250), 100u);
  EXPECT_EQ(book.outstanding_liabilities(), 150u);
  // The next confiscation settles the debt FIFO.
  book.confiscate(2);  // pool receives 400, pays 150 immediately
  EXPECT_EQ(book.outstanding_liabilities(), 0u);
  EXPECT_EQ(ledger.balance(client), 250u);
  EXPECT_EQ(book.pool_balance(), 250u);
  EXPECT_EQ(book.total_compensated(), 250u);
}

// ---------------------------------------------------------------------------
// DRep (Fig. 2)
// ---------------------------------------------------------------------------

TEST(DRepTest, InitialFillMatchesFigure2a) {
  // capacity 6 CRs: sector starts with exactly six capacity replicas.
  DRepManager drep(1, 1, 6 * 256, 256, {}, /*materialize=*/false);
  EXPECT_EQ(drep.cr_count(), 6u);
  EXPECT_EQ(drep.unsealed_space(), 0u);
  EXPECT_TRUE(drep.invariant_holds());
}

TEST(DRepTest, FilesDisplaceCapacityReplicas) {
  // Fig. 2b: after filling files, two CRs remain.
  DRepManager drep(1, 1, 6 * 256, 256, {}, false);
  drep.add_replica(1, 600);
  drep.add_replica(2, 400);
  // 1536 total; files use 1000 -> free 536 -> 2 CRs + 24 unsealed.
  EXPECT_EQ(drep.cr_count(), 2u);
  EXPECT_EQ(drep.unsealed_space(), 24u);
  EXPECT_TRUE(drep.invariant_holds());
}

TEST(DRepTest, RemovalRegeneratesCRs) {
  // Fig. 2c: when file size decreases, a CR is regenerated.
  DRepManager drep(1, 1, 6 * 256, 256, {}, false);
  drep.add_replica(1, 600);
  drep.add_replica(2, 400);
  const auto before = drep.present_cr_indices();
  drep.remove_replica(2);
  EXPECT_EQ(drep.cr_count(), 3u);
  EXPECT_GT(drep.regeneration_count(), 0u);
  // Regenerated CRs take the lowest absent indices.
  const auto after = drep.present_cr_indices();
  EXPECT_TRUE(std::includes(after.begin(), after.end(), before.begin(),
                            before.end()));
  EXPECT_TRUE(drep.invariant_holds());
}

TEST(DRepTest, CommitmentsStableAcrossRegeneration) {
  DRepManager drep(1, 1, 4 * 256, 256, {}, false);
  const crypto::Hash256 before = drep.cr_commitment(3);
  drep.add_replica(1, 256);  // drops CR3
  EXPECT_EQ(drep.cr_count(), 3u);
  drep.remove_replica(1);  // regenerates it
  EXPECT_EQ(drep.cr_commitment(3), before);
}

TEST(DRepTest, MaterializedModeExposesSealedBytes) {
  DRepManager drep(1, 1, 2 * 256, 256, {.work = 1, .challenges = 2}, true);
  const auto& bytes = drep.cr_bytes(0);
  EXPECT_EQ(bytes.size(), 256u);
  // Sealed zeros are not zeros.
  EXPECT_NE(bytes, std::vector<std::uint8_t>(256, 0));
  drep.add_replica(1, 256);
  EXPECT_THROW((void)drep.cr_bytes(1), util::InvariantViolation);
}

TEST(DRepTest, DistinctReplicasOfSameFileCoexist) {
  DRepManager drep(1, 1, 4 * 256, 256, {}, false);
  drep.add_replica(replica_nonce(9, 0), 100);
  drep.add_replica(replica_nonce(9, 1), 100);
  EXPECT_EQ(drep.used_by_files(), 200u);
  EXPECT_THROW(drep.add_replica(replica_nonce(9, 1), 100),
               util::InvariantViolation);
}

// ---------------------------------------------------------------------------
// §VI-D value subnets
// ---------------------------------------------------------------------------

TEST(SubnetTest, RoutesByValueLevel) {
  ledger::Ledger ledger;
  Params p = small_params();
  ValueSubnets subnets({10, 100, 1000}, p, ledger, 7);
  EXPECT_EQ(subnets.subnet_count(), 3u);
  EXPECT_EQ(subnets.level_for(10).value(), 0u);
  EXPECT_EQ(subnets.level_for(100).value(), 1u);   // largest dividing level
  EXPECT_EQ(subnets.level_for(110).value(), 0u);   // only 10 divides 110
  EXPECT_EQ(subnets.level_for(3000).value(), 2u);
  EXPECT_FALSE(subnets.level_for(5).is_ok());
}

TEST(SubnetTest, ReplicaCountStaysNearKAcrossLevels) {
  ledger::Ledger ledger;
  Params p = small_params();
  ValueSubnets subnets({10, 100, 1000}, p, ledger, 7);
  // A 1000-value file in the level-1000 subnet has exactly k replicas,
  // instead of k*100 in the base network.
  EXPECT_EQ(subnets.subnet(2).params().replica_count(1000), p.k);
}

TEST(SubnetTest, FileAddLandsInCorrectSubnet) {
  ledger::Ledger ledger;
  Params p = small_params();
  p.verify_proofs = false;
  ValueSubnets subnets({10, 100}, p, ledger, 7);
  const AccountId provider = ledger.create_account(1'000'000);
  const AccountId client = ledger.create_account(1'000'000);
  for (std::size_t level = 0; level < 2; ++level) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          subnets.subnet(level).sector_register(provider, 4 * 1024).is_ok());
    }
  }
  FileInfo info;
  info.size = 100;
  info.value = 100;
  const auto result = subnets.file_add(client, info);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().first, 1u);
  EXPECT_TRUE(subnets.subnet(1).file_exists(result.value().second));
  EXPECT_FALSE(subnets.subnet(0).file_exists(result.value().second));
}

}  // namespace
}  // namespace fi::core
