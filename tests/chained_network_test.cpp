#include <gtest/gtest.h>

#include <optional>

#include "core/chained_network.h"
#include "crypto/porep.h"
#include "crypto/post.h"
#include "ledger/account.h"
#include "util/prng.h"

namespace fi::core {
namespace {

Params chain_params() {
  Params p;
  p.min_capacity = 8 * 1024;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 10.0;
  p.gamma_deposit = 0.2;
  p.proof_cycle = 100;
  p.proof_due = 150;
  p.proof_deadline = 300;
  p.avg_refresh = 1000.0;
  p.verify_proofs = false;
  p.cr_size = 2048;
  return p;
}

struct ChainFixture : ::testing::Test {
  void build(Params p = chain_params(), int sectors = 4) {
    net = std::make_unique<ChainedNetwork>(p, ledger, /*seed=*/11);
    net->network().set_auto_prove(true);
    client = ledger.create_account(1'000'000);
    for (int i = 0; i < sectors; ++i) {
      providers.push_back(ledger.create_account(1'000'000));
      auto id = net->sector_register(providers.back(), 8 * 1024);
      ASSERT_TRUE(id.is_ok());
      sectors_.push_back(id.value());
    }
  }

  FileId add_and_store(ByteCount size, TokenAmount value) {
    auto id = net->file_add(client, {size, value, {}});
    EXPECT_TRUE(id.is_ok());
    auto& n = net->network();
    for (ReplicaIndex i = 0; i < n.allocations().replica_count(id.value());
         ++i) {
      const AllocEntry& e = n.allocations().entry(id.value(), i);
      EXPECT_TRUE(net->file_confirm(n.sectors().at(e.next).owner, id.value(),
                                    i, e.next, {}, std::nullopt)
                      .is_ok());
    }
    net->advance_to(net->now() + 5);
    return id.value();
  }

  [[nodiscard]] std::size_t tx_count(const std::string& kind) const {
    std::size_t count = 0;
    for (std::uint64_t h = 0; h < net->chain().height(); ++h) {
      for (const auto& tx : net->chain().at(h).txs) {
        if (tx.kind == kind) ++count;
      }
    }
    return count;
  }

  ledger::Ledger ledger;
  std::unique_ptr<ChainedNetwork> net;
  ClientId client = 0;
  std::vector<ProviderId> providers;
  std::vector<SectorId> sectors_;
};

TEST_F(ChainFixture, RequestsAreRecordedAsTransactions) {
  build();
  const FileId id = add_and_store(1000, 20);
  ASSERT_TRUE(net->file_discard(client, id).is_ok());
  net->advance_to(5 * net->network().params().proof_cycle);

  EXPECT_EQ(tx_count("Sector_Register"), 4u);
  EXPECT_EQ(tx_count("File_Add"), 1u);
  EXPECT_EQ(tx_count("File_Confirm"), 4u);
  EXPECT_EQ(tx_count("File_Discard"), 1u);
  EXPECT_EQ(net->mempool_size(), 0u);  // everything sealed by now
}

TEST_F(ChainFixture, RejectedRequestsLeaveNoTransaction) {
  build();
  EXPECT_FALSE(net->file_add(client, {0, 20, {}}).is_ok());
  EXPECT_FALSE(net->file_add(999, {100, 20, {}}).is_ok());
  net->advance_to(2 * net->network().params().proof_cycle);
  EXPECT_EQ(tx_count("File_Add"), 0u);
}

TEST_F(ChainFixture, OneBlockPerEpochAndChainValidates) {
  build();
  add_and_store(1000, 20);
  net->advance_to(10 * net->network().params().proof_cycle + 5);
  // Epochs 0..10 must be sealed.
  EXPECT_GE(net->chain().height(), 11u);
  EXPECT_TRUE(net->chain().validate());
  // Block timestamps track epoch boundaries.
  for (std::uint64_t h = 0; h < net->chain().height(); ++h) {
    EXPECT_EQ(net->chain().at(h).timestamp,
              h * net->network().params().proof_cycle);
  }
}

TEST_F(ChainFixture, ProposersAreStorageProviders) {
  build();
  net->advance_to(30 * net->network().params().proof_cycle);
  std::size_t proposed = 0;
  for (std::uint64_t h = 1; h < net->chain().height(); ++h) {
    const AccountId proposer = net->chain().at(h).proposer;
    if (proposer == kNoAccount) continue;  // empty election
    ++proposed;
    EXPECT_NE(std::find(providers.begin(), providers.end(), proposer),
              providers.end())
        << "unknown proposer at height " << h;
  }
  EXPECT_GT(proposed, 0u);
}

TEST_F(ChainFixture, PowerTableTracksSectorLifecycle) {
  build();
  auto table = net->power_table();
  ASSERT_EQ(table.size(), 4u);
  for (const auto& entry : table) EXPECT_EQ(entry.power, 8u * 1024u);
  // Corruption removes power; disabling (still storing) keeps it.
  net->network().corrupt_sector_now(sectors_[0]);
  ASSERT_TRUE(net->sector_disable(providers[1], sectors_[1]).is_ok());
  table = net->power_table();
  std::uint64_t total = 0;
  for (const auto& entry : table) total += entry.power;
  EXPECT_EQ(total, 2u * 8u * 1024u);  // corrupted drops out; disabled empty
}

TEST_F(ChainFixture, PowerTableIsCanonicallyOrdered) {
  // Regression: the table feeds elections and run_election reports winners
  // in table order, so it must come out sorted by miner id no matter how
  // the provider hash map happens to be laid out.
  build();
  auto table = net->power_table();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      table.begin(), table.end(),
      [](const ledger::PowerEntry& a, const ledger::PowerEntry& b) {
        return a.miner < b.miner;
      }));
  // Stays sorted as the sector set churns.
  net->network().corrupt_sector_now(sectors_[0]);
  table = net->power_table();
  EXPECT_TRUE(std::is_sorted(
      table.begin(), table.end(),
      [](const ledger::PowerEntry& a, const ledger::PowerEntry& b) {
        return a.miner < b.miner;
      }));
}

TEST_F(ChainFixture, ChainBeaconDrivesWindowPoSt) {
  // Full-crypto proof verified against the chain's epoch beacon.
  Params p = chain_params();
  p.verify_proofs = true;
  p.seal = {.work = 1, .challenges = 2};
  p.post_challenges = 2;
  net = std::make_unique<ChainedNetwork>(p, ledger, 11);
  client = ledger.create_account(1'000'000);
  const ProviderId provider = ledger.create_account(1'000'000);
  auto sector = net->sector_register(provider, 8 * 1024);
  ASSERT_TRUE(sector.is_ok());

  // Client-side data and File_Add.
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> data(1200);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  FileInfo info{data.size(), 10, crypto::merkle_root_of_data(data)};
  auto file = net->file_add(client, info);
  ASSERT_TRUE(file.is_ok());

  // Provider seals and confirms both replicas with real proofs.
  auto& n = net->network();
  std::vector<std::vector<std::uint8_t>> sealed_replicas;
  for (ReplicaIndex i = 0; i < n.allocations().replica_count(file.value());
       ++i) {
    const AllocEntry& e = n.allocations().entry(file.value(), i);
    const crypto::ReplicaId rid{provider, e.next,
                                replica_nonce(file.value(), i)};
    auto sealed = crypto::seal(data, rid, p.seal);
    const auto comm_r = crypto::replica_commitment(sealed);
    const auto proof = crypto::prove_seal(data, sealed, rid, p.seal);
    ASSERT_TRUE(net->file_confirm(provider, file.value(), i, e.next, comm_r,
                                  proof)
                    .is_ok());
    sealed_replicas.push_back(std::move(sealed));
  }
  net->advance_to(net->now() + 5);  // CheckAlloc

  // Prove at a later epoch using the chain's beacon for that epoch.
  net->advance_to(3 * p.proof_cycle - 10);
  for (ReplicaIndex i = 0; i < 2; ++i) {
    const AllocEntry& e = n.allocations().entry(file.value(), i);
    const crypto::ReplicaId rid{provider, e.prev,
                                replica_nonce(file.value(), i)};
    const auto beacon = n.beacon(net->now());
    EXPECT_EQ(beacon, net->chain().beacon(net->epoch_of(net->now())));
    const auto proof = crypto::prove_window(sealed_replicas[i], rid, beacon,
                                            net->now(), p.post_challenges);
    auto status = net->file_prove(provider, file.value(), i, e.prev, proof);
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
  // A proof built against the WRONG epoch's beacon is rejected.
  const AllocEntry& e = n.allocations().entry(file.value(), 0);
  const crypto::ReplicaId rid{provider, e.prev,
                              replica_nonce(file.value(), 0)};
  const auto stale = crypto::prove_window(
      sealed_replicas[0], rid, net->chain().beacon(0), net->now(),
      p.post_challenges);
  EXPECT_EQ(net->file_prove(provider, file.value(), 0, e.prev, stale).code(),
            util::ErrorCode::proof_invalid);
  EXPECT_TRUE(net->chain().validate());
}

}  // namespace
}  // namespace fi::core
