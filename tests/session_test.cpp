// fi::Session equivalence suite (src/api/session.h): PR 10 carved
// fi_sim's monolithic run loop into a library-level session API, and this
// file is the pin that keeps the refactor honest. Stepping a session one
// epoch at a time, checkpointing it mid-run, resuming at a different
// worker count, and forking it — with or without divergent spec knobs —
// must all be *byte-identical* to the monolithic ScenarioRunner::run()
// they decompose. Any drift here means fi_sim and fi_orchestrate no
// longer agree with the golden hashes.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/session.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "snapshot/snapshot.h"
#include "util/check.h"
#include "util/config.h"

namespace fi {
namespace {

namespace fs = std::filesystem;

#ifndef FI_CONFIG_DIR
#error "FI_CONFIG_DIR must be defined by the build"
#endif

/// Same shrinking discipline as snapshot_test.cpp: keep every shipped
/// config's *shape* (phases, adversaries, traffic) but cut the sizes so a
/// full run takes milliseconds.
scenario::ScenarioSpec shrunk_spec(const std::string& name) {
  auto loaded = util::Config::load((fs::path(FI_CONFIG_DIR) / name).string());
  EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  auto parsed = scenario::ScenarioSpec::from_config(loaded.value());
  EXPECT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  scenario::ScenarioSpec spec = std::move(parsed).value();
  spec.sectors = std::min<std::uint64_t>(spec.sectors, 80);
  spec.initial_files = std::min<std::uint64_t>(spec.initial_files, 120);
  for (scenario::PhaseSpec& phase : spec.phases) {
    phase.cycles = std::min<std::uint64_t>(phase.cycles, 6);
    phase.periods = std::min<std::uint64_t>(phase.periods, 1);
    phase.adds_per_cycle = std::min<std::uint64_t>(phase.adds_per_cycle, 8);
    phase.add_sectors = std::min<std::uint64_t>(phase.add_sectors, 10);
  }
  for (adversary::AdversarySpec& adv : spec.adversaries) {
    adv.start_epoch = std::min<std::uint64_t>(adv.start_epoch, 1);
    adv.sectors = std::min<std::uint64_t>(adv.sectors, 6);
    adv.requests_per_epoch =
        std::min<std::uint64_t>(adv.requests_per_epoch, 12);
  }
  if (spec.traffic.enabled) {
    spec.traffic.requests_per_cycle =
        std::min<std::uint64_t>(spec.traffic.requests_per_cycle, 48);
    if (spec.traffic.defense_enabled) {
      spec.traffic.defense_warmup =
          std::min<std::uint64_t>(spec.traffic.defense_warmup, 2);
    }
  }
  return spec;
}

struct RunOutcome {
  std::string report_json;
  std::string state_hash;
};

/// The ground truth every session decomposition is measured against.
RunOutcome monolithic_run(scenario::ScenarioSpec spec) {
  scenario::ScenarioRunner runner(std::move(spec));
  const std::string json = runner.run().to_json();
  return {json, snapshot::state_hash(runner)};
}

Session open_session(const scenario::ScenarioSpec& spec) {
  auto opened = Session::from_spec(spec);
  EXPECT_TRUE(opened.is_ok()) << opened.status().to_string();
  return std::move(opened).value();
}

fs::path temp_path(const std::string& tag) {
  return fs::path(::testing::TempDir()) / ("fi_session_" + tag + ".fisnap");
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// ---------------------------------------------------------------------------
// Stepping == monolithic run
// ---------------------------------------------------------------------------

TEST(SessionStepping, OneEpochAtATimeEqualsMonolithicRun) {
  // Three shapes: plain churn, a targeted adversary, a colluding pool.
  for (const char* name :
       {"smoke.cfg", "targeted_file.cfg", "colluding_pool.cfg"}) {
    const scenario::ScenarioSpec spec = shrunk_spec(name);
    const RunOutcome mono = monolithic_run(spec);

    Session session = open_session(spec);
    std::uint64_t stepped = 0;
    while (!session.finished()) {
      const std::uint64_t ran = session.run_epochs(1);
      stepped += ran;
      if (ran == 0) break;  // trailing zero-cycle phases
      EXPECT_EQ(session.epoch(), stepped) << name;
    }
    EXPECT_TRUE(session.finished()) << name;
    EXPECT_EQ(session.run_epochs(3), 0u) << name << ": ran past the end";

    // Hash before finalization must equal hash after: report() is a
    // projection plus adversary end hooks, both covered by the monolithic
    // baseline's post-run hash.
    EXPECT_EQ(session.report().to_json(), mono.report_json) << name;
    EXPECT_EQ(session.state_hash(), mono.state_hash) << name;
  }
}

TEST(SessionStepping, ArbitraryBatchSizesEqualMonolithicRun) {
  const scenario::ScenarioSpec spec = shrunk_spec("smoke.cfg");
  const RunOutcome mono = monolithic_run(spec);

  Session session = open_session(spec);
  (void)session.run_epochs(2);
  (void)session.run_epochs(5);
  (void)session.run_epochs(scenario::ScenarioRunner::kAllCycles);
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.report().to_json(), mono.report_json);
  EXPECT_EQ(session.state_hash(), mono.state_hash);
}

TEST(SessionStepping, RunToEpochSemantics) {
  Session session = open_session(shrunk_spec("smoke.cfg"));
  ASSERT_TRUE(session.run_to_epoch(3).is_ok());
  EXPECT_EQ(session.epoch(), 3u);

  // Backwards is a caller bug, not a silent no-op.
  const util::Status backwards = session.run_to_epoch(2);
  ASSERT_FALSE(backwards.is_ok());
  EXPECT_EQ(backwards.code(), util::ErrorCode::invalid_argument);

  // Past the end: the run finishes, then reports the shortfall.
  const util::Status overrun = session.run_to_epoch(1000000);
  ASSERT_FALSE(overrun.is_ok());
  EXPECT_EQ(overrun.code(), util::ErrorCode::failed_precondition);
  EXPECT_TRUE(session.finished());
}

TEST(SessionStepping, ReportIsSingleShot) {
  Session session = open_session(shrunk_spec("smoke.cfg"));
  (void)session.report();
  // The underlying runner latches, exactly like double ScenarioRunner::run().
  EXPECT_THROW((void)session.report(), util::InvariantViolation);
}

// ---------------------------------------------------------------------------
// Checkpointing == the monolithic epoch-callback save
// ---------------------------------------------------------------------------

TEST(SessionCheckpoint, FileBytesMatchMonolithicSaveAt) {
  const scenario::ScenarioSpec spec = shrunk_spec("smoke.cfg");
  for (const std::uint64_t save_epoch : {2u, 5u}) {
    const fs::path mono_path =
        temp_path("mono_" + std::to_string(save_epoch));
    {
      scenario::ScenarioRunner saver(spec);
      saver.set_epoch_callback(
          [&](const scenario::ScenarioRunner& at_epoch) {
            if (at_epoch.epoch() == save_epoch) {
              ASSERT_TRUE(
                  snapshot::save_to_file(at_epoch, mono_path.string())
                      .is_ok());
            }
          });
      (void)saver.run();
    }

    const fs::path session_path =
        temp_path("stepped_" + std::to_string(save_epoch));
    Session session = open_session(spec);
    ASSERT_EQ(session.run_epochs(save_epoch), save_epoch);
    ASSERT_TRUE(session.checkpoint(session_path.string()).is_ok());

    // Byte identity of the *files*, not just the hashes: the spec text,
    // framing, and digest must agree too.
    EXPECT_EQ(read_bytes(session_path), read_bytes(mono_path))
        << "save_epoch " << save_epoch;
    fs::remove(mono_path);
    fs::remove(session_path);
  }
}

TEST(SessionResume, WorkerOverrideIsByteInvisible) {
  const scenario::ScenarioSpec spec = shrunk_spec("smoke.cfg");
  const RunOutcome mono = monolithic_run(spec);

  const fs::path path = temp_path("workers");
  {
    Session session = open_session(spec);
    (void)session.run_epochs(3);
    ASSERT_TRUE(session.checkpoint(path.string()).is_ok());
  }

  Session::OpenOptions options;
  options.workers = 8;
  auto resumed = Session::from_snapshot_file(path.string(), options);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  Session session = std::move(resumed).value();
  EXPECT_EQ(session.epoch(), 3u);
  EXPECT_EQ(session.report().to_json(), mono.report_json);
  EXPECT_EQ(session.state_hash(), mono.state_hash);
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Forks: shared prefix, divergent futures
// ---------------------------------------------------------------------------

TEST(SessionFork, SharedPrefixThenDivergentKnobs) {
  // Fork mid-attack (the targeted adversary locks on at epoch 1), so the
  // two branches still have something to diverge on.
  const scenario::ScenarioSpec spec = shrunk_spec("targeted_file.cfg");
  const RunOutcome mono = monolithic_run(spec);

  Session parent = open_session(spec);
  ASSERT_EQ(parent.run_epochs(1), 1u);
  const std::string prefix_hash = parent.state_hash();

  // Fork A: faithful continuation. Fork B: counterfactual — the same
  // attack prefix, a gentler adversary from here on.
  auto fork_a = parent.fork();
  ASSERT_TRUE(fork_a.is_ok()) << fork_a.status().to_string();
  Session::OpenOptions gentler;
  gentler.overrides.emplace_back("adversary.0.sectors_per_epoch", "1");
  auto fork_b = parent.fork(gentler);
  ASSERT_TRUE(fork_b.is_ok()) << fork_b.status().to_string();

  // Both forks hash identically to the parent at the fork point — spec
  // knobs live in the spec text, never in the state body.
  EXPECT_EQ(fork_a.value().state_hash(), prefix_hash);
  EXPECT_EQ(fork_b.value().state_hash(), prefix_hash);

  // The faithful fork and the parent both land exactly on the monolithic
  // run; the counterfactual provably diverges.
  const std::string report_a = fork_a.value().report().to_json();
  const std::string report_b = fork_b.value().report().to_json();
  EXPECT_EQ(report_a, mono.report_json);
  EXPECT_EQ(fork_a.value().state_hash(), mono.state_hash);
  EXPECT_NE(report_b, mono.report_json);
  EXPECT_NE(fork_b.value().state_hash(), mono.state_hash);

  // Forking is non-destructive: the parent still finishes on the golden
  // trajectory after both forks were taken.
  EXPECT_EQ(parent.report().to_json(), mono.report_json);
  EXPECT_EQ(parent.state_hash(), mono.state_hash);
}

// ---------------------------------------------------------------------------
// Opening: override validation shares the config parser's rules
// ---------------------------------------------------------------------------

TEST(SessionOpen, UnknownOverrideKeyIsRejected) {
  Session::OpenOptions options;
  options.overrides.emplace_back("no.such.key", "1");
  auto opened = Session::from_config_file(
      (fs::path(FI_CONFIG_DIR) / "smoke.cfg").string(), options);
  ASSERT_FALSE(opened.is_ok());
}

TEST(SessionOpen, MalformedOverrideValueIsRejected) {
  Session::OpenOptions options;
  options.overrides.emplace_back("sectors", "banana");
  auto opened = Session::from_config_file(
      (fs::path(FI_CONFIG_DIR) / "smoke.cfg").string(), options);
  ASSERT_FALSE(opened.is_ok());
}

TEST(SessionOpen, LoadSpecAppliesOverridesWithoutBuildingNetwork) {
  Session::OpenOptions options;
  options.overrides.emplace_back("seed", "7");
  auto spec = Session::load_spec(
      (fs::path(FI_CONFIG_DIR) / "smoke.cfg").string(), options);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().seed, 7u);
}

}  // namespace
}  // namespace fi
