#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/bounds.h"
#include "analysis/planner.h"
#include "core/agents.h"
#include "core/reputation.h"
#include "core/retrieval_market.h"
#include "ledger/account.h"

/// Tests for the extension features: the competitive retrieval market
/// (§III-E), the softmax reputation tracker (the conclusion's open
/// problem), and the §VI-A parameter planner.
namespace fi {
namespace {

using namespace fi::core;

// ---------------------------------------------------------------------------
// RetrievalMarket
// ---------------------------------------------------------------------------

struct MarketFixture : ::testing::Test {
  ledger::Ledger ledger;
  RetrievalMarket market{ledger, /*default_price=*/3};
  AccountId client = ledger.create_account(10'000);
  AccountId cheap = ledger.create_account(0);
  AccountId pricey = ledger.create_account(0);
};

TEST_F(MarketFixture, CheapestAskWinsSelection) {
  market.post_ask(cheap, 1);
  market.post_ask(pricey, 7);
  const auto winner = market.select({pricey, cheap});
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, cheap);
}

TEST_F(MarketFixture, DefaultPriceAppliesToSilentProviders) {
  EXPECT_EQ(market.ask_of(cheap), 3u);
  market.post_ask(cheap, 1);
  EXPECT_EQ(market.ask_of(cheap), 1u);
}

TEST_F(MarketFixture, TiesBreakDeterministically) {
  market.post_ask(cheap, 2);
  market.post_ask(pricey, 2);
  const AccountId low = std::min(cheap, pricey);
  EXPECT_EQ(*market.select({pricey, cheap}), low);
  EXPECT_EQ(*market.select({cheap, pricey}), low);
}

TEST_F(MarketFixture, EmptyCandidateSetSelectsNothing) {
  EXPECT_FALSE(market.select({}).has_value());
}

TEST_F(MarketFixture, SettleMovesQuoteAndTracksVolume) {
  market.post_ask(cheap, 2);
  ASSERT_TRUE(market.settle(client, cheap, 3000).is_ok());  // 3 KiB * 2
  EXPECT_EQ(ledger.balance(cheap), 6u);
  EXPECT_EQ(ledger.balance(client), 10'000u - 6u);
  EXPECT_EQ(market.bytes_served(cheap), 3000u);
  EXPECT_EQ(market.revenue(cheap), 6u);
  EXPECT_EQ(market.retrievals_settled(), 1u);
}

TEST_F(MarketFixture, SettleFailsWithoutFundsAndRecordsNothing) {
  const AccountId broke = ledger.create_account(1);
  market.post_ask(pricey, 100);
  EXPECT_EQ(market.settle(broke, pricey, 2048).code(),
            util::ErrorCode::insufficient_funds);
  EXPECT_EQ(market.bytes_served(pricey), 0u);
  EXPECT_EQ(market.retrievals_settled(), 0u);
}

TEST(MarketIntegration, RetrievalGoesToTheCheapestHolder) {
  Params p;
  p.min_capacity = 8 * 1024;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 20.0;
  p.gamma_deposit = 0.2;
  p.delay_per_kib = 5;
  p.min_transfer_window = 5;
  p.verify_proofs = true;
  p.seal = {.work = 1, .challenges = 2};
  p.cr_size = 2048;
  Simulation sim(p, 77);
  ClientAgent& client = sim.add_client(1'000'000);
  ProviderAgent& a = sim.add_provider(10'000'000);
  ProviderAgent& b = sim.add_provider(10'000'000);
  ASSERT_TRUE(a.register_sector(4 * 8 * 1024).is_ok());
  ASSERT_TRUE(b.register_sector(4 * 8 * 1024).is_ok());
  a.set_retrieval_price(1);
  b.set_retrieval_price(9);

  std::vector<std::uint8_t> data(3000, 0x2a);
  auto file = client.store_file(data, 10);  // cp=2: one replica per provider
  ASSERT_TRUE(file.is_ok());
  sim.run_until(200);

  bool ok = false;
  client.retrieve(file.value(), [&](bool success) { ok = success; });
  sim.run_until(400);
  ASSERT_TRUE(ok);
  // The cheap provider served and earned at its own ask.
  EXPECT_GT(sim.market().bytes_served(a.account()), 0u);
  EXPECT_EQ(sim.market().bytes_served(b.account()), 0u);
  EXPECT_EQ(sim.market().revenue(a.account()), 3u);  // 3 KiB * 1
}

// ---------------------------------------------------------------------------
// ReputationTracker
// ---------------------------------------------------------------------------

struct ReputationFixture : ::testing::Test {
  ReputationTracker tracker;
  std::unordered_map<SectorId, ProviderId> owners{{1, 100}, {2, 200}};
};

TEST_F(ReputationFixture, ActivationsRaisePunishmentsLower) {
  tracker.observe(ReplicaActivated{5, 0, 1}, owners);
  EXPECT_GT(tracker.score(100), 0.0);
  tracker.observe(ProviderPunished{1, 10, "late"}, owners);
  EXPECT_LT(tracker.score(100), 0.0);
}

TEST_F(ReputationFixture, CorruptionCratersScore) {
  tracker.observe(ReplicaActivated{5, 0, 2}, owners);
  const double before = tracker.score(200);
  tracker.observe(SectorCorrupted{2, 500}, owners);
  EXPECT_LT(tracker.score(200), before - 4.0);
}

TEST_F(ReputationFixture, UnknownSectorsIgnored) {
  tracker.observe(ReplicaActivated{5, 0, 99}, owners);
  EXPECT_EQ(tracker.tracked_count(), 0u);
}

TEST_F(ReputationFixture, SoftmaxDistributionNormalizesAndOrders) {
  tracker.track(100);
  tracker.track(200);
  for (int i = 0; i < 10; ++i) {
    tracker.observe(ReplicaActivated{5, 0, 1}, owners);  // rewards 100
  }
  tracker.observe(ProviderPunished{2, 10, "late"}, owners);  // dings 200
  const auto dist = tracker.distribution();
  ASSERT_EQ(dist.size(), 2u);
  double total = 0.0;
  for (const auto& [p, w] : dist) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(tracker.selection_probability(100),
            tracker.selection_probability(200));
}

TEST_F(ReputationFixture, DistributionIsInsertionOrderInvariant) {
  // Regression: the softmax normalizer used to accumulate in hash-map
  // iteration order, so two trackers with the same scores could disagree
  // in the last ulp. The distribution must be bitwise identical and come
  // out sorted by provider id regardless of track() order.
  ReputationTracker forward;
  ReputationTracker reverse;
  for (ProviderId p : {100, 200, 300}) forward.track(p);
  for (ProviderId p : {300, 200, 100}) reverse.track(p);
  std::unordered_map<SectorId, ProviderId> map{{1, 100}, {2, 200}, {3, 300}};
  for (ReputationTracker* t : {&forward, &reverse}) {
    for (int i = 0; i < 7; ++i) t->observe(ReplicaActivated{5, 0, 1}, map);
    t->observe(ProviderPunished{2, 10, "late"}, map);
    t->observe(SectorCorrupted{3, 50}, map);
  }
  const auto a = forward.distribution();
  const auto b = reverse.distribution();
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_EQ(a[i].second, b[i].second);  // bitwise, not NEAR
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const auto& x, const auto& y) {
                               return x.first < y.first;
                             }));
}

TEST_F(ReputationFixture, TemperatureFlattensSelection) {
  ReputationParams hot;
  hot.temperature = 100.0;
  ReputationTracker flat(hot);
  ReputationTracker sharp;  // temperature 1
  for (ReputationTracker* t : {&flat, &sharp}) {
    t->track(100);
    t->track(200);
    for (int i = 0; i < 20; ++i) {
      t->observe(ReplicaActivated{5, 0, 1}, owners);
    }
  }
  // Same scores, but the hot softmax stays near uniform.
  EXPECT_LT(flat.selection_probability(100) - 0.5,
            sharp.selection_probability(100) - 0.5);
  EXPECT_GT(flat.selection_probability(200),
            sharp.selection_probability(200));
}

TEST_F(ReputationFixture, RankOrdersByScore) {
  tracker.track(100);
  tracker.track(200);
  tracker.observe(SectorCorrupted{1, 100}, owners);  // 100 craters
  const auto ranked = tracker.rank({100, 200});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 200u);
  EXPECT_EQ(ranked[1], 100u);
}

TEST_F(ReputationFixture, DecayFadesHistory) {
  ReputationParams p;
  p.decay = 0.5;  // aggressive, for the test
  ReputationTracker tracker2(p);
  tracker2.observe(ProviderPunished{1, 10, "late"}, owners);
  const double right_after = tracker2.score(100);
  // Many later events elsewhere decay the old penalty toward zero.
  for (int i = 0; i < 20; ++i) {
    tracker2.observe(ReplicaActivated{5, 0, 2}, owners);
  }
  EXPECT_GT(tracker2.score(100), right_after * 0.999);
  EXPECT_NEAR(tracker2.score(100), 0.0, 0.01);
}

TEST(ReputationLiveNetwork, PunishedProviderRanksBelowHonest) {
  // Wire the tracker to a real protocol run: one provider stops proving
  // and accumulates punishments; its rank drops below the honest one's.
  Params p;
  p.min_capacity = 8 * 1024;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 20.0;
  p.gamma_deposit = 0.2;
  p.verify_proofs = false;
  p.cr_size = 2048;
  ledger::Ledger ledger;
  Network net(p, ledger, 5);
  net.set_auto_prove(true);
  ReputationTracker tracker;
  std::unordered_map<SectorId, ProviderId> owners;
  net.subscribe([&](const Event& e) { tracker.observe(e, owners); });

  const AccountId honest = ledger.create_account(1'000'000);
  const AccountId sloppy = ledger.create_account(1'000'000);
  const SectorId s1 = net.sector_register(honest, 8 * 1024).value();
  const SectorId s2 = net.sector_register(sloppy, 8 * 1024).value();
  owners[s1] = honest;
  owners[s2] = sloppy;
  tracker.track(honest);
  tracker.track(sloppy);

  const AccountId client = ledger.create_account(1'000'000);
  for (int i = 0; i < 4; ++i) {
    auto f = net.file_add(client, {512, 10, {}});
    ASSERT_TRUE(f.is_ok());
    for (ReplicaIndex r = 0; r < 2; ++r) {
      const AllocEntry& e = net.allocations().entry(f.value(), r);
      ASSERT_TRUE(net.file_confirm(net.sectors().at(e.next).owner, f.value(),
                                   r, e.next, {}, std::nullopt)
                      .is_ok());
    }
  }
  // The sloppy provider's disk goes dark: punishments accrue.
  net.corrupt_sector_physical(s2);
  net.advance_to(2 * p.proof_cycle + 5);
  EXPECT_LT(tracker.score(sloppy), tracker.score(honest));
  EXPECT_EQ(tracker.rank({sloppy, honest}).front(), honest);
}

// ---------------------------------------------------------------------------
// §VI-A planner
// ---------------------------------------------------------------------------

TEST(Planner, BalancedCapParaEquatesTheoremOneRestrictions) {
  analysis::WorkloadProfile w;
  w.mean_size_times_value = 1.0;  // r1 = 1
  w.mean_value_per_size = 1.0;
  for (std::uint32_t k : {2u, 10u, 20u}) {
    const double cap_para = analysis::balanced_cap_para(w, k);
    // r2 = mean_value_per_size / capPara must equal 2*r1*k.
    EXPECT_NEAR(1.0 / cap_para, 2.0 * k, 1e-9);
  }
}

TEST(Planner, SizeFractionMatchesTheoremTwo) {
  // cap/size = 1000 gives the paper's < 1e-50 at Ns <= 1e12; the planner
  // inverts that relation.
  const double fraction = analysis::max_size_fraction(1e12, 1e-50);
  EXPECT_NEAR(1.0 / fraction, 1000.0, 10.0);
  // Looser targets allow bigger files.
  EXPECT_GT(analysis::max_size_fraction(1e6, 1e-6),
            analysis::max_size_fraction(1e6, 1e-30));
}

TEST(Planner, FindsPaperScaleConfiguration) {
  analysis::WorkloadProfile w;
  w.mean_size_times_value = 1.0;
  // The paper's capPara=1e3 corresponds to value-rich workloads; pick the
  // profile that balances there at k=20: value_per_size = 2*k*capPara*r1.
  w.mean_value_per_size = 2.0 * 20 * 1000.0;
  analysis::RiskTargets targets;
  targets.lambda = 0.5;
  targets.max_deposit_ratio = 0.005;
  const auto plan = analysis::plan_network(1e6, w, targets);
  ASSERT_TRUE(plan.feasible);
  // The planner may find a slightly smaller k than the paper's 20 (the
  // budget is met a touch earlier on the balanced-capPara curve), but it
  // lands in the same neighbourhood and within budget.
  EXPECT_GE(plan.k, 16u);
  EXPECT_LE(plan.k, 20u);
  EXPECT_LE(plan.gamma_deposit, targets.max_deposit_ratio);
  EXPECT_NEAR(plan.cap_para, analysis::balanced_cap_para(w, plan.k), 1e-9);
  EXPECT_GT(plan.size_limit_fraction, 0.0);
  // Pinning k = 20 and capPara = 1000 reproduces the paper's 0.0046.
  EXPECT_NEAR(analysis::theorem4_deposit_ratio_bound(0.5, 20, 1e6, 1e3),
              0.0046, 0.0002);
}

TEST(Planner, InfeasibleBudgetReported) {
  analysis::WorkloadProfile w;
  w.mean_value_per_size = 2.0;  // balanced capPara = 1/k: tiny
  analysis::RiskTargets targets;
  targets.lambda = 0.9;                 // survive near-total corruption
  targets.max_deposit_ratio = 1e-6;    // with almost no deposit
  const auto plan = analysis::plan_network(1e4, w, targets, /*k_max=*/32);
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, HigherLambdaNeedsBiggerK) {
  analysis::WorkloadProfile w;
  w.mean_value_per_size = 2.0 * 20 * 1000.0;
  analysis::RiskTargets mild, harsh;
  mild.lambda = 0.3;
  harsh.lambda = 0.7;
  mild.max_deposit_ratio = harsh.max_deposit_ratio = 0.01;
  const auto plan_mild = analysis::plan_network(1e6, w, mild);
  const auto plan_harsh = analysis::plan_network(1e6, w, harsh);
  ASSERT_TRUE(plan_mild.feasible);
  ASSERT_TRUE(plan_harsh.feasible);
  EXPECT_LE(plan_mild.k, plan_harsh.k);
}

}  // namespace
}  // namespace fi
