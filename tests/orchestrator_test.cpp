// fi_orchestrate's library layer (src/api/experiment_plan.h,
// src/api/orchestrator.h, src/api/baseline_session.h) tested in-process:
// plan parsing and validation rejections, DAG execution with parent-hash
// validation, counterfactual fork divergence, failure poisoning of a
// subtree, scheduler determinism across --jobs values, and the baseline
// protocol sessions feeding the comparison table.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "api/baseline_session.h"
#include "api/comparison.h"
#include "api/experiment_plan.h"
#include "api/orchestrator.h"
#include "util/config.h"

namespace fi {
namespace {

namespace fs = std::filesystem;

#ifndef FI_CONFIG_DIR
#error "FI_CONFIG_DIR must be defined by the build"
#endif

util::Result<ExperimentPlan> parse_plan(const std::string& text) {
  auto config = util::Config::parse(text);
  EXPECT_TRUE(config.is_ok()) << config.status().to_string();
  // Scenario paths in the test plans resolve against the config tree.
  return ExperimentPlan::from_config(config.value(), FI_CONFIG_DIR);
}

/// Parse + validate, expecting a failure whose message names `needle`.
void expect_rejected(const std::string& text, const std::string& needle) {
  auto plan = parse_plan(text);
  util::Status status =
      plan.is_ok() ? plan.value().validate() : plan.status();
  ASSERT_FALSE(status.is_ok()) << "expected rejection for: " << needle;
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << "got: " << status.to_string();
}

fs::path fresh_out_dir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("fi_orch_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A 5-node DAG in test size: a segment, a faithful continuation, a
// counterfactual fork, an independent sweep root, and a baseline — every
// node kind the orchestrator schedules.
const char kSmallDag[] = R"(
plan.name = small_dag
node.0.name = genesis
node.0.scenario = smoke.cfg
node.0.epochs = 3
node.1.name = tail
node.1.parent = genesis
node.2.name = fork_b
node.2.parent = genesis
node.2.set.net.avg_refresh = 4
node.3.name = sweep
node.3.scenario = smoke.cfg
node.3.set.seed = 1234
node.4.name = base
node.4.kind = baseline
node.4.protocol = filecoin
node.4.sectors = 400
node.4.files = 2000
node.4.epochs = 2
)";

// ---------------------------------------------------------------------------
// Plan parsing and validation
// ---------------------------------------------------------------------------

TEST(ExperimentPlanParse, SmallDagParses) {
  auto plan = parse_plan(kSmallDag);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_TRUE(plan.value().validate().is_ok());
  ASSERT_EQ(plan.value().nodes.size(), 5u);
  EXPECT_EQ(plan.value().name, "small_dag");
  EXPECT_EQ(plan.value().nodes[2].overrides.size(), 1u);
  EXPECT_EQ(plan.value().nodes[2].overrides[0].first, "net.avg_refresh");
  EXPECT_EQ(plan.value().nodes[4].kind, PlanNode::Kind::baseline);
  EXPECT_EQ(plan.value().nodes[4].baseline.protocol, "filecoin");
  // Root scenario paths resolve against the plan's directory.
  EXPECT_EQ(plan.value().nodes[0].scenario,
            (fs::path(FI_CONFIG_DIR) / "smoke.cfg").string());
}

TEST(ExperimentPlanParse, RejectsMalformedPlans) {
  expect_rejected(
      "node.0.name = a\nnode.0.scenario = smoke.cfg\n"
      "node.1.name = a\nnode.1.scenario = smoke.cfg\n",
      "duplicate");
  expect_rejected("node.0.name = a\nnode.0.parent = ghost\n", "ghost");
  expect_rejected("node.0.name = a\nnode.0.parent = a\n", "own parent");
  expect_rejected(
      "node.0.name = a\nnode.0.parent = b\nnode.1.name = b\n"
      "node.1.parent = a\n",
      "cycle");
  expect_rejected(
      "node.0.name = a\nnode.0.kind = baseline\nnode.0.protocol = sia\n"
      "node.1.name = b\nnode.1.parent = a\n",
      "baseline");
  expect_rejected(
      "node.0.name = a\nnode.0.scenario = smoke.cfg\n"
      "node.0.parent_snapshot = x.fisnap\n",
      "exactly one");
  expect_rejected(
      "node.0.name = a\nnode.0.scenario = smoke.cfg\n"
      "node.0.parent_hash = abc\n",
      "parent_hash");
  expect_rejected(
      "node.0.name = a\nnode.0.scenario = smoke.cfg\nnode.0.bananas = 3\n",
      "unknown plan key");
  // Sparse node indices hide silently-dropped nodes; the parser insists
  // the groups are dense from 0.
  expect_rejected(
      "node.0.name = a\nnode.0.scenario = smoke.cfg\n"
      "node.2.name = c\nnode.2.scenario = smoke.cfg\n",
      "dense");
  expect_rejected("node.0.name = bad/name\nnode.0.scenario = smoke.cfg\n",
                  "[A-Za-z0-9_-]");
  expect_rejected(
      "node.0.name = a\nnode.0.kind = baseline\n"
      "node.0.protocol = twelvechain\n",
      "twelvechain");
}

// ---------------------------------------------------------------------------
// DAG execution
// ---------------------------------------------------------------------------

TEST(Orchestrator, SmallDagRunsAndValidatesParentHashes) {
  auto plan = parse_plan(kSmallDag);
  ASSERT_TRUE(plan.is_ok());

  OrchestrateOptions options;
  options.out_dir = fresh_out_dir("dag").string();
  options.jobs = 3;
  auto outcome = run_plan(plan.value(), options);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();
  ASSERT_TRUE(outcome.value().all_ok());
  ASSERT_EQ(outcome.value().nodes.size(), 5u);

  const NodeOutcome& genesis = outcome.value().nodes[0];
  const NodeOutcome& tail = outcome.value().nodes[1];
  const NodeOutcome& fork_b = outcome.value().nodes[2];
  const NodeOutcome& sweep = outcome.value().nodes[3];
  const NodeOutcome& base = outcome.value().nodes[4];

  // The segment checkpointed (a child resumes it) and both children
  // validated the resumed state hash against the recorded one.
  EXPECT_TRUE(fs::exists(genesis.checkpoint_path));
  EXPECT_EQ(genesis.end_epoch, 3u);
  EXPECT_TRUE(tail.parent_hash_validated);
  EXPECT_TRUE(fork_b.parent_hash_validated);

  // Shared prefix, divergent futures: the override changes the end state.
  EXPECT_NE(tail.state_hash, fork_b.state_hash);
  EXPECT_NE(tail.state_hash, sweep.state_hash);  // divergent seed too
  EXPECT_FALSE(tail.report_json.empty());

  // Every completed node feeds the table; the baseline carries Table-IV
  // columns.
  EXPECT_EQ(outcome.value().rows().size(), 5u);
  EXPECT_TRUE(base.has_row);
  EXPECT_EQ(base.row.protocol, "Filecoin");
  EXPECT_EQ(base.row.files, 2000u);
  EXPECT_FALSE(base.row.prevents_sybil && base.row.provable_robustness);
}

TEST(Orchestrator, TablesAreByteIdenticalAcrossJobCounts) {
  auto plan = parse_plan(kSmallDag);
  ASSERT_TRUE(plan.is_ok());

  std::vector<std::string> tables;
  for (const std::uint64_t jobs : {1u, 3u}) {
    OrchestrateOptions options;
    options.out_dir =
        fresh_out_dir("jobs" + std::to_string(jobs)).string();
    options.jobs = jobs;
    auto outcome = run_plan(plan.value(), options);
    ASSERT_TRUE(outcome.is_ok());
    ASSERT_TRUE(outcome.value().all_ok());
    tables.push_back(comparison_table_json(outcome.value().plan_name,
                                           outcome.value().rows()));
  }
  EXPECT_EQ(tables[0], tables[1]);
}

TEST(Orchestrator, FailedParentPoisonsSubtreeButSiblingsComplete) {
  auto plan = parse_plan(
      "node.0.name = broken\nnode.0.scenario = no_such_config.cfg\n"
      "node.0.epochs = 2\n"
      "node.1.name = child\nnode.1.parent = broken\n"
      "node.2.name = grandchild\nnode.2.parent = child\n"
      "node.3.name = healthy\nnode.3.scenario = smoke.cfg\n");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();

  OrchestrateOptions options;
  options.out_dir = fresh_out_dir("poison").string();
  options.jobs = 2;
  auto outcome = run_plan(plan.value(), options);
  ASSERT_TRUE(outcome.is_ok()) << outcome.status().to_string();

  EXPECT_FALSE(outcome.value().all_ok());
  EXPECT_FALSE(outcome.value().nodes[0].status.is_ok());
  EXPECT_TRUE(outcome.value().nodes[1].skipped);
  EXPECT_TRUE(outcome.value().nodes[2].skipped);
  EXPECT_TRUE(outcome.value().nodes[3].status.is_ok());
  EXPECT_TRUE(outcome.value().nodes[3].has_row);
}

TEST(Orchestrator, ExternalParentHashMismatchFailsTheNode) {
  // Stage a real checkpoint, then claim it should hash to something else.
  const fs::path dir = fresh_out_dir("mismatch");
  {
    auto seed_plan = parse_plan(
        "node.0.name = genesis\nnode.0.scenario = smoke.cfg\n"
        "node.0.epochs = 2\nnode.1.name = tail\nnode.1.parent = genesis\n");
    ASSERT_TRUE(seed_plan.is_ok());
    OrchestrateOptions options;
    options.out_dir = dir.string();
    auto seeded = run_plan(seed_plan.value(), options);
    ASSERT_TRUE(seeded.is_ok());
    ASSERT_TRUE(seeded.value().all_ok());
  }

  auto plan = parse_plan(
      "node.0.name = resume\n"
      "node.0.parent_snapshot = " +
      (dir / "genesis.fisnap").string() +
      "\n"
      "node.0.parent_hash = " +
      std::string(64, 'f') + "\n");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  OrchestrateOptions options;
  options.out_dir = fresh_out_dir("mismatch_run").string();
  auto outcome = run_plan(plan.value(), options);
  ASSERT_TRUE(outcome.is_ok());
  const util::Status& status = outcome.value().nodes[0].status;
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("parent state hash mismatch"),
            std::string::npos)
      << status.to_string();
}

// ---------------------------------------------------------------------------
// Baseline sessions
// ---------------------------------------------------------------------------

TEST(BaselineSession, DeterministicAcrossRuns) {
  BaselineSpec spec;
  spec.protocol = "sia";
  spec.sectors = 300;
  spec.files = 1500;
  spec.epochs = 3;

  std::vector<std::string> hashes;
  for (int run = 0; run < 2; ++run) {
    auto opened = BaselineSession::open(spec);
    ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
    BaselineSession session = std::move(opened).value();
    while (!session.finished()) ASSERT_EQ(session.run_epochs(1), 1u);
    hashes.push_back(session.state_hash());
    const ComparisonRow row = session.row("sia_node");
    EXPECT_EQ(row.protocol, "Sia");
    EXPECT_TRUE(row.has_outcome);
    EXPECT_GE(row.sybil_loss_fraction, 0.0);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(BaselineSession, RejectsUnknownProtocolAndBadKnobs) {
  BaselineSpec spec;
  spec.protocol = "magnetotape";
  EXPECT_FALSE(BaselineSpec(spec).validate().is_ok());
  spec.protocol = "storj";
  spec.lambda = 1.5;
  EXPECT_FALSE(BaselineSpec(spec).validate().is_ok());
}

}  // namespace
}  // namespace fi
