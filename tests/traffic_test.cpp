// Retrieval-traffic engine: traffic.* spec parsing/rejection/round-trips,
// the Poisson-envelope defense (honest streams never flagged across
// seeds, a DDoS gang flagged within a bounded number of epochs, no
// defense-off flags), worker-count byte-identity of traffic reports, QoS
// behavior under flash crowds and serve-refusal cartels, and snapshot
// round-trips of every piece of new traffic/defense/market state.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/spec.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "snapshot/snapshot.h"
#include "traffic/defense.h"
#include "traffic/spec.h"
#include "util/binary_io.h"
#include "util/config.h"

namespace {

using fi::adversary::AdversarySpec;
using fi::scenario::MetricsReport;
using fi::scenario::PhaseSpec;
using fi::scenario::ScenarioRunner;
using fi::scenario::ScenarioSpec;
using fi::traffic::kNeverFlagged;
using fi::traffic::PoissonEnvelopeDefense;
using fi::traffic::TrafficSpec;
using fi::util::BinaryReader;
using fi::util::BinaryWriter;
using fi::util::Config;

// ---- Spec parsing ----------------------------------------------------------

TEST(TrafficSpecTest, AbsentBlockStaysDisabledAndSerializesNothing) {
  const auto config = Config::parse("");
  ASSERT_TRUE(config.is_ok());
  const auto spec = TrafficSpec::from_config(config.value());
  ASSERT_TRUE(spec.is_ok());
  EXPECT_FALSE(spec.value().enabled);
  std::string out;
  spec.value().serialize(out);
  EXPECT_TRUE(out.empty());
}

TEST(TrafficSpecTest, ConfigRoundTripIsLossless) {
  const std::string text =
      "traffic.requests_per_cycle = 120\n"
      "traffic.streams = 6\n"
      "traffic.zipf_s = 1.1\n"
      "traffic.diurnal_period = 8\n"
      "traffic.diurnal_amplitude = 0.5\n"
      "traffic.flash_epoch = 4\n"
      "traffic.flash_duration = 3\n"
      "traffic.flash_multiplier = 7\n"
      "traffic.flash_focus = 0.85\n"
      "traffic.provider_capacity = 16\n"
      "traffic.queue_limit = 64\n"
      "traffic.cache_blocks = 128\n"
      "traffic.price_per_kib = 2\n"
      "traffic.defense.enabled = true\n"
      "traffic.defense.warmup = 3\n"
      "traffic.defense.k = 3.5\n"
      "traffic.defense.violations = 2\n"
      "traffic.defense.surge = 6\n"
      "traffic.defense.rate_limit = false\n";
  const auto config = Config::parse(text);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  const auto parsed = TrafficSpec::from_config(config.value());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const TrafficSpec& spec = parsed.value();
  EXPECT_TRUE(spec.enabled);
  EXPECT_EQ(spec.requests_per_cycle, 120u);
  EXPECT_EQ(spec.streams, 6u);
  EXPECT_DOUBLE_EQ(spec.zipf_s, 1.1);
  EXPECT_EQ(spec.flash_multiplier, 7u);
  EXPECT_TRUE(spec.defense_enabled);
  EXPECT_FALSE(spec.defense_rate_limit);
  EXPECT_TRUE(spec.validate().is_ok());

  std::string out;
  spec.serialize(out);
  EXPECT_EQ(out, text);
}

TEST(TrafficSpecTest, ValidateRejectsInconsistentBlocks) {
  const auto expect_invalid = [](TrafficSpec spec) {
    spec.enabled = true;
    if (spec.requests_per_cycle == 0) spec.requests_per_cycle = 10;
    EXPECT_FALSE(spec.validate().is_ok());
  };
  {
    TrafficSpec spec;
    spec.streams = 0;
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.zipf_s = 0.0;
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.diurnal_amplitude = 0.5;  // no period
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.diurnal_period = 4;  // no amplitude
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.flash_multiplier = 10;  // flash knob without a flash window
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.flash_duration = 2;
    spec.flash_multiplier = 1;  // a multiplier of 1 is no flash at all
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.defense_surge = 9;  // defense knob without defense.enabled
    expect_invalid(spec);
  }
  {
    TrafficSpec spec;
    spec.defense_enabled = true;
    spec.defense_warmup = 0;
    expect_invalid(spec);
  }
  {
    // Knobs off their defaults while the block itself is disabled.
    TrafficSpec spec;
    spec.streams = 5;
    EXPECT_FALSE(spec.validate().is_ok());
  }
}

TEST(TrafficSpecTest, TrafficAdversariesRequireTheTrafficEngine) {
  ScenarioSpec spec;
  spec.sectors = 10;
  spec.initial_files = 10;
  spec.phases.push_back(PhaseSpec::make_idle(2));
  spec.adversaries.push_back(AdversarySpec::make_retrieval_ddos(10, 2, 1));
  EXPECT_FALSE(spec.validate().is_ok());
  spec.traffic.enabled = true;
  spec.traffic.requests_per_cycle = 10;
  EXPECT_TRUE(spec.validate().is_ok());

  spec.adversaries.back() = AdversarySpec::make_cartel_starver(0.2);
  EXPECT_TRUE(spec.validate().is_ok());
  spec.traffic = TrafficSpec{};
  EXPECT_FALSE(spec.validate().is_ok());
}

// ---- Defense unit behavior -------------------------------------------------

TEST(PoissonEnvelopeDefenseTest, FlagsOnlyPersistentEnvelopeBreakers) {
  // 4 streams at ~10/epoch, one attacker at 60/epoch from epoch 3.
  PoissonEnvelopeDefense defense(/*streams=*/5, /*warmup=*/3, /*k=*/4.0,
                                 /*violations=*/2);
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t stream = 0; stream < 4; ++stream) {
      for (int r = 0; r < 10; ++r) defense.observe(stream);
    }
    const int attack = epoch >= 3 ? 60 : 10;
    for (int r = 0; r < attack; ++r) defense.observe(4);
    defense.end_epoch(epoch);
  }
  // Envelope from warmup means of 10: 10 + 4*sqrt(10) + 3 ~ 25.6.
  EXPECT_TRUE(defense.armed());
  EXPECT_GT(defense.envelope(), 20.0);
  EXPECT_LT(defense.envelope(), 30.0);
  for (std::size_t stream = 0; stream < 4; ++stream) {
    EXPECT_FALSE(defense.flagged(stream)) << stream;
    EXPECT_EQ(defense.first_flagged_epoch(stream), kNeverFlagged);
  }
  EXPECT_TRUE(defense.flagged(4));
  // Violations at epochs 3 and 4 -> flagged when epoch 4 closes.
  EXPECT_EQ(defense.first_flagged_epoch(4), 4u);
  EXPECT_EQ(defense.flagged_count(), 1u);
  EXPECT_EQ(defense.allowance(), 25u);
}

TEST(PoissonEnvelopeDefenseTest, FlagIsStickyAfterBackoff) {
  PoissonEnvelopeDefense defense(/*streams=*/3, /*warmup=*/2, /*k=*/2.0,
                                 /*violations=*/1);
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t stream = 0; stream < 2; ++stream) {
      for (int r = 0; r < 8; ++r) defense.observe(stream);
    }
    // Attack for exactly one epoch, then go quiet.
    const int attack = epoch == 3 ? 100 : 8;
    for (int r = 0; r < attack; ++r) defense.observe(2);
    defense.end_epoch(epoch);
  }
  EXPECT_TRUE(defense.flagged(2));
  EXPECT_EQ(defense.first_flagged_epoch(2), 3u);
}

// ---- Scenario fixtures -----------------------------------------------------

ScenarioSpec traffic_base_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "traffic";
  spec.seed = seed;
  spec.sectors = 60;
  spec.sector_units = 4;
  spec.initial_files = 250;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.k = 3;
  spec.params.cap_para = 200.0;
  spec.params.gamma_deposit = 0.05;
  spec.params.avg_refresh = 20.0;
  spec.traffic.enabled = true;
  spec.traffic.requests_per_cycle = 80;
  spec.traffic.streams = 8;
  spec.traffic.provider_capacity = 16;
  spec.traffic.queue_limit = 64;
  spec.traffic.cache_blocks = 64;
  spec.phases.push_back(PhaseSpec::make_idle(12));
  spec.phases.push_back(PhaseSpec::make_rent_audit(1));
  return spec;
}

void enable_defense(ScenarioSpec& spec) {
  spec.traffic.defense_enabled = true;
  spec.traffic.defense_warmup = 3;
  spec.traffic.defense_k = 4.0;
  spec.traffic.defense_violations = 2;
  spec.traffic.defense_surge = 4;
  spec.traffic.defense_rate_limit = true;
}

// ---- Defense end-to-end ----------------------------------------------------

TEST(TrafficDefenseTest, HonestLoadIsNeverFlaggedAcrossSeeds) {
  for (const std::uint64_t seed : {11u, 202u, 3003u}) {
    ScenarioSpec spec = traffic_base_spec(seed);
    enable_defense(spec);
    ScenarioRunner runner(std::move(spec));
    const MetricsReport report = runner.run();
    ASSERT_TRUE(report.traffic.enabled);
    EXPECT_TRUE(report.traffic.defense_armed) << seed;
    EXPECT_EQ(report.traffic.flagged_streams, 0u) << seed;
    EXPECT_EQ(report.traffic.rate_limited, 0u) << seed;
    EXPECT_EQ(report.traffic.first_flagged_epoch, kNeverFlagged) << seed;
    EXPECT_GT(report.traffic.requests_attempted, 0u) << seed;
  }
}

TEST(TrafficDefenseTest, DdosGangIsFlaggedWithinBoundedEpochs) {
  ScenarioSpec spec = traffic_base_spec(77);
  enable_defense(spec);
  spec.adversaries.push_back(
      AdversarySpec::make_retrieval_ddos(/*requests_per_epoch=*/120,
                                         /*gang=*/3, /*start_epoch=*/5));
  ScenarioRunner runner(std::move(spec));
  const MetricsReport report = runner.run();
  ASSERT_TRUE(report.traffic.enabled);
  // All 3 gang streams flagged, within violations+1 epochs of the attack.
  EXPECT_EQ(report.traffic.flagged_streams, 3u);
  ASSERT_EQ(report.traffic.flagged_stream_ids.size(), 3u);
  for (const std::uint64_t stream : report.traffic.flagged_stream_ids) {
    EXPECT_GE(stream, 8u) << "an honest stream was flagged";
  }
  EXPECT_LE(report.traffic.first_flagged_epoch, 8u);
  // The rate limiter bit: most of the hammer volume never reaches a
  // provider queue.
  EXPECT_GT(report.traffic.rate_limited, 0u);
  ASSERT_EQ(report.adversaries.size(), 1u);
  const auto& extras = report.adversaries[0].counters.extras;
  const auto extra = [&extras](const char* name) {
    const auto it = std::find_if(
        extras.begin(), extras.end(),
        [name](const auto& kv) { return kv.first == name; });
    return it == extras.end() ? -1.0 : it->second;
  };
  EXPECT_EQ(extra("streams_flagged"), 3.0);
  EXPECT_GT(extra("requests_rate_limited"), 0.0);
  EXPECT_GT(extra("requests_attempted"), extra("requests_enqueued"));
}

TEST(TrafficDefenseTest, NoDefenseMeansNoFlagsAndNoLimiting) {
  ScenarioSpec spec = traffic_base_spec(78);
  spec.adversaries.push_back(
      AdversarySpec::make_retrieval_ddos(/*requests_per_epoch=*/120,
                                         /*gang=*/2, /*start_epoch=*/5));
  ScenarioRunner runner(std::move(spec));
  const MetricsReport report = runner.run();
  EXPECT_FALSE(report.traffic.defense_armed);
  EXPECT_EQ(report.traffic.flagged_streams, 0u);
  EXPECT_EQ(report.traffic.rate_limited, 0u);
}

// ---- QoS paths -------------------------------------------------------------

TEST(TrafficQosTest, CartelStarvationShowsUpAsStarvedRequests) {
  ScenarioSpec spec = traffic_base_spec(79);
  // Refuse service from most of the fleet so some files lose every
  // cooperative holder.
  spec.adversaries.push_back(AdversarySpec::make_cartel_starver(0.9, 0, 1));
  ScenarioRunner runner(std::move(spec));
  const MetricsReport report = runner.run();
  EXPECT_GT(report.traffic.starved, 0u);
  ASSERT_EQ(report.adversaries.size(), 1u);
  const auto& extras = report.adversaries[0].counters.extras;
  const auto it = std::find_if(
      extras.begin(), extras.end(),
      [](const auto& kv) { return kv.first == "refusal_hits"; });
  ASSERT_NE(it, extras.end());
  EXPECT_GT(it->second, 0.0);
}

TEST(TrafficQosTest, FlashCrowdOverloadsDropsAndRaisesTailLatency) {
  ScenarioSpec quiet = traffic_base_spec(80);
  ScenarioSpec flash = traffic_base_spec(80);
  flash.traffic.flash_epoch = 4;
  flash.traffic.flash_duration = 4;
  flash.traffic.flash_multiplier = 12;
  flash.traffic.flash_focus = 0.95;
  const MetricsReport quiet_report = ScenarioRunner(std::move(quiet)).run();
  const MetricsReport flash_report = ScenarioRunner(std::move(flash)).run();
  EXPECT_EQ(quiet_report.traffic.dropped, 0u);
  EXPECT_GT(flash_report.traffic.dropped, 0u);
  EXPECT_GE(flash_report.traffic.p99_latency,
            quiet_report.traffic.p99_latency);
  EXPECT_GT(flash_report.traffic.requests_attempted,
            quiet_report.traffic.requests_attempted);
}

TEST(TrafficQosTest, RetrievalSettlementConservesTheLedger) {
  ScenarioSpec spec = traffic_base_spec(81);
  ScenarioRunner runner(std::move(spec));
  const MetricsReport report = runner.run();
  // Every enqueued request settled exactly once, and rent conservation
  // still holds with retrieval payments riding the same ledger.
  EXPECT_EQ(report.traffic.retrievals_settled, report.traffic.enqueued);
  EXPECT_GT(report.traffic.revenue, 0u);
  EXPECT_EQ(report.traffic.payment_failures, 0u);
  EXPECT_TRUE(report.rent_conserved);
}

// ---- Determinism -----------------------------------------------------------

TEST(TrafficDeterminismTest, ReportsAreByteIdenticalAcrossWorkerCounts) {
  const auto spec_with_workers = [](std::uint64_t workers) {
    ScenarioSpec spec = traffic_base_spec(91);
    enable_defense(spec);
    spec.engine_workers = workers;
    spec.adversaries.push_back(
        AdversarySpec::make_retrieval_ddos(100, 2, 4));
    spec.adversaries.push_back(AdversarySpec::make_cartel_starver(0.2, 0, 2));
    return spec;
  };
  ScenarioRunner serial(spec_with_workers(1));
  const std::string reference = serial.run().to_json(false);
  EXPECT_NE(reference.find("\"traffic\""), std::string::npos);
  for (const std::uint64_t workers : {4u, 16u}) {
    ScenarioRunner parallel(spec_with_workers(workers));
    EXPECT_EQ(reference, parallel.run().to_json(false))
        << "worker drift at engine.workers = " << workers;
  }
}

// ---- Snapshot round-trip ---------------------------------------------------

std::string state_hash_of(ScenarioSpec spec) {
  ScenarioRunner runner(std::move(spec));
  (void)runner.run();
  return fi::snapshot::state_hash(runner);
}

TEST(TrafficSnapshotTest, MidAttackSaveLoadContinuesByteIdentically) {
  // Save mid-flash, mid-attack, with the defense armed and flags set —
  // every piece of new state (market book/tallies, cache FIFO, queues,
  // per-stream counters, defense streaks/flags, pending hammers) is
  // non-trivial at the checkpoint.
  const auto make_spec = [] {
    ScenarioSpec spec = traffic_base_spec(92);
    enable_defense(spec);
    spec.traffic.flash_epoch = 5;
    spec.traffic.flash_duration = 4;
    spec.traffic.flash_multiplier = 6;
    spec.adversaries.push_back(
        AdversarySpec::make_retrieval_ddos(100, 2, 4));
    spec.adversaries.push_back(AdversarySpec::make_cartel_starver(0.3, 0, 2));
    return spec;
  };

  ScenarioRunner uninterrupted(make_spec());
  const std::string reference = uninterrupted.run().to_json(false);
  const std::string reference_hash = fi::snapshot::state_hash(uninterrupted);

  BinaryWriter saved;
  {
    ScenarioRunner saver(make_spec());
    saver.set_epoch_callback([&](const ScenarioRunner& at_epoch) {
      if (at_epoch.epoch() == 7) saver.save_state(saved);
    });
    EXPECT_EQ(saver.run().to_json(false), reference);
  }
  ASSERT_GT(saved.size(), 0u);

  BinaryReader reader(saved.data());
  auto resumed = ScenarioRunner::resume(make_spec(), reader);
  ASSERT_TRUE(resumed.is_ok()) << resumed.status().to_string();
  EXPECT_EQ(resumed.value()->epoch(), 7u);
  EXPECT_EQ(resumed.value()->run().to_json(false), reference);
  EXPECT_EQ(fi::snapshot::state_hash(*resumed.value()), reference_hash);
}

TEST(TrafficSnapshotTest, TruncatedTrafficTailIsRejected) {
  const auto make_spec = [] {
    ScenarioSpec spec = traffic_base_spec(93);
    enable_defense(spec);
    return spec;
  };
  BinaryWriter saved;
  {
    ScenarioRunner saver(make_spec());
    saver.set_epoch_callback([&](const ScenarioRunner& at_epoch) {
      if (at_epoch.epoch() == 5) saver.save_state(saved);
    });
    (void)saver.run();
  }
  ASSERT_GT(saved.size(), 64u);
  // Chop into the traffic tail: the reader must fail cleanly, not crash
  // or accept a half-loaded engine.
  const auto& bytes = saved.data();
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 48);
  BinaryReader reader(truncated);
  EXPECT_FALSE(ScenarioRunner::resume(make_spec(), reader).is_ok());
}

TEST(TrafficSnapshotTest, TrafficFreeSnapshotsCarryNoTrafficBytes) {
  // A disabled traffic block must leave the snapshot byte-stream exactly
  // as the pre-traffic format: the runner appends nothing.
  ScenarioSpec spec = traffic_base_spec(94);
  spec.traffic = TrafficSpec{};
  spec.adversaries.clear();
  const std::string hash_a = state_hash_of(spec);
  const std::string hash_b = state_hash_of(spec);
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_FALSE(hash_a.empty());
}

}  // namespace
