#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/hash.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/prng.h"

namespace fi::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(util::to_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(util::to_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      util::to_hex(sha256(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  std::vector<std::uint8_t> input(1'000'000, 'a');
  EXPECT_EQ(util::to_hex(sha256(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint8_t> data(10'000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  // Feed in awkward chunk sizes crossing block boundaries.
  Sha256 hasher;
  std::size_t off = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 127, 500, 9180};
  for (std::size_t c : chunks) {
    hasher.update({data.data() + off, c});
    off += c;
  }
  ASSERT_EQ(off, data.size());
  EXPECT_EQ(hasher.finalize(), sha256(data));
}

TEST(Sha256, ResetRestoresInitialState) {
  Sha256 hasher;
  hasher.update(bytes_of("garbage"));
  hasher.reset();
  hasher.update(bytes_of("abc"));
  EXPECT_EQ(util::to_hex(hasher.finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---------------------------------------------------------------------------
// Hash256 and domain separation
// ---------------------------------------------------------------------------

TEST(Hash256Type, DomainSeparationChangesDigest) {
  const auto data = bytes_of("payload");
  EXPECT_NE(hash_bytes("domain/a", data), hash_bytes("domain/b", data));
}

TEST(Hash256Type, PairOrderMatters) {
  const Hash256 a = hash_bytes("t", bytes_of("a"));
  const Hash256 b = hash_bytes("t", bytes_of("b"));
  EXPECT_NE(hash_pair("n", a, b), hash_pair("n", b, a));
}

TEST(Hash256Type, U64HashingIsPositional) {
  EXPECT_NE(hash_u64s("t", {1, 2}), hash_u64s("t", {2, 1}));
  EXPECT_NE(hash_u64s("t", {1}), hash_u64s("t", {1, 0}));
}

TEST(Hash256Type, HexAndPrefix) {
  Hash256 h;
  h.bytes[0] = 0xab;
  h.bytes[7] = 0x01;
  EXPECT_EQ(h.hex().size(), 64u);
  EXPECT_EQ(h.short_hex(), "ab000000");
  EXPECT_EQ(h.prefix_u64(), 0xab00000000000001ull);
  EXPECT_FALSE(h.is_zero());
  EXPECT_TRUE(Hash256{}.is_zero());
}

// ---------------------------------------------------------------------------
// Merkle trees
// ---------------------------------------------------------------------------

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto data = bytes_of("tiny");
  const MerkleTree tree = MerkleTree::over_data(data);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.root(), merkle_leaf_hash(data));
}

TEST(Merkle, RootChangesWithContent) {
  EXPECT_NE(merkle_root_of_data(bytes_of("hello world")),
            merkle_root_of_data(bytes_of("hello worle")));
}

TEST(Merkle, ProofVerifiesForEveryLeaf) {
  util::Xoshiro256 rng(2);
  for (std::size_t size : {1u, 64u, 65u, 128u, 1000u, 4096u, 5000u}) {
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const MerkleTree tree = MerkleTree::over_data(data);
    for (std::uint64_t i = 0; i < tree.leaf_count(); ++i) {
      const MerkleProof proof = tree.prove(i);
      ASSERT_TRUE(merkle_verify(tree.root(), tree.leaf(i), proof))
          << "size=" << size << " leaf=" << i;
    }
  }
}

TEST(Merkle, TamperedLeafFailsVerification) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const MerkleTree tree = MerkleTree::over_data(data);
  const MerkleProof proof = tree.prove(3);
  Hash256 wrong_leaf = tree.leaf(3);
  wrong_leaf.bytes[0] ^= 1;
  EXPECT_FALSE(merkle_verify(tree.root(), wrong_leaf, proof));
}

TEST(Merkle, TamperedPathFailsVerification) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const MerkleTree tree = MerkleTree::over_data(data);
  MerkleProof proof = tree.prove(3);
  proof.path[1].bytes[5] ^= 1;
  EXPECT_FALSE(merkle_verify(tree.root(), tree.leaf(3), proof));
}

TEST(Merkle, WrongIndexFailsVerification) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const MerkleTree tree = MerkleTree::over_data(data);
  MerkleProof proof = tree.prove(3);
  proof.leaf_index = 4;
  EXPECT_FALSE(merkle_verify(tree.root(), tree.leaf(3), proof));
}

TEST(Merkle, WrongDepthProofRejected) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const MerkleTree tree = MerkleTree::over_data(data);
  MerkleProof proof = tree.prove(3);
  proof.path.push_back(Hash256{});
  EXPECT_FALSE(merkle_verify(tree.root(), tree.leaf(3), proof));
  proof.path.resize(proof.path.size() - 2);
  EXPECT_FALSE(merkle_verify(tree.root(), tree.leaf(3), proof));
}

TEST(Merkle, EmptyDataHasWellDefinedRoot) {
  const MerkleTree tree = MerkleTree::over_data({});
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_EQ(tree.root(), merkle_leaf_hash({}));
}

TEST(Merkle, OddLeafCountDuplicatesLast) {
  // 3 leaves: root = H(H(l0,l1), H(l2,l2)).
  std::vector<Hash256> leaves;
  for (int i = 0; i < 3; ++i) {
    leaves.push_back(hash_u64s("leaf", {static_cast<std::uint64_t>(i)}));
  }
  const MerkleTree tree(leaves);
  const Hash256 left = hash_pair("fi/merkle/node", leaves[0], leaves[1]);
  const Hash256 right = hash_pair("fi/merkle/node", leaves[2], leaves[2]);
  EXPECT_EQ(tree.root(), hash_pair("fi/merkle/node", left, right));
}

TEST(Merkle, LeafVsInteriorDomainSeparation) {
  // A leaf hash can never be confused with an interior node hash because
  // they use distinct domains.
  const auto data = bytes_of("x");
  EXPECT_NE(merkle_leaf_hash(data), hash_bytes("fi/merkle/node", data));
}

}  // namespace
}  // namespace fi::crypto
