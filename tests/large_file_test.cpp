#include <gtest/gtest.h>

#include <optional>

#include "core/agents.h"

namespace fi::core {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

Params large_params() {
  Params p;
  p.min_capacity = 8 * 1024;
  p.min_value = 100;
  p.k = 2;
  p.cap_para = 20.0;
  p.gamma_deposit = 0.5;
  p.proof_cycle = 50;
  p.proof_due = 75;
  p.proof_deadline = 150;
  p.avg_refresh = 1000.0;
  p.delay_per_kib = 5;
  p.min_transfer_window = 5;
  p.verify_proofs = true;
  p.seal = {.work = 1, .challenges = 2};
  p.cr_size = 2048;
  return p;
}

struct LargeFileFixture : ::testing::Test {
  void build(int providers = 6) {
    sim = std::make_unique<Simulation>(large_params(), /*seed=*/0x1a56e);
    client = &sim->add_client(10'000'000);
    for (int i = 0; i < providers; ++i) {
      ProviderAgent& p = sim->add_provider(100'000'000);
      ASSERT_TRUE(p.register_sector(4 * 8 * 1024).is_ok());
      agents.push_back(&p);
    }
  }

  std::unique_ptr<Simulation> sim;
  ClientAgent* client = nullptr;
  std::vector<ProviderAgent*> agents;
};

TEST_F(LargeFileFixture, SmallFileRejected) {
  build();
  const auto result =
      client->store_large_file(random_bytes(100, 1), 40, /*size_limit=*/2000);
  EXPECT_EQ(result.status().code(), util::ErrorCode::invalid_argument);
}

TEST_F(LargeFileFixture, SegmentsStoredAsIndividualFiles) {
  build();
  // 7 KB over a 2000-byte limit -> k = 8 segments (4 data), value 2*400/8.
  const auto data = random_bytes(7000, 2);
  auto handle = client->store_large_file(data, 400, 2000);
  ASSERT_TRUE(handle.is_ok()) << handle.status().to_string();
  EXPECT_EQ(handle.value().layout.segment_count, 8u);
  EXPECT_EQ(handle.value().segment_files.size(), 8u);
  sim->run_until(200);
  auto& net = sim->network();
  for (FileId f : handle.value().segment_files) {
    ASSERT_TRUE(net.file_exists(f));
    EXPECT_EQ(net.file(f).value, 100u);  // 2*400/8
    EXPECT_EQ(net.file(f).cp, 2u);       // k * 100/minValue
  }
}

TEST_F(LargeFileFixture, RoundTripThroughTheNetwork) {
  build();
  const auto data = random_bytes(6500, 3);
  auto handle = client->store_large_file(data, 400, 2000);
  ASSERT_TRUE(handle.is_ok());
  sim->run_until(200);
  std::optional<std::vector<std::uint8_t>> recovered;
  bool done = false;
  client->retrieve_large_file(handle.value(), [&](auto bytes) {
    done = true;
    recovered = std::move(bytes);
  });
  sim->run_until(600);
  ASSERT_TRUE(done);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, data);
}

TEST_F(LargeFileFixture, RecoversWithHalfTheSegmentsLost) {
  build();
  const auto data = random_bytes(7000, 4);
  auto handle = client->store_large_file(data, 400, 2000);
  ASSERT_TRUE(handle.is_ok());
  sim->run_until(200);
  // Discard exactly half of the segments (simulates their loss without
  // waiting out proof deadlines).
  const auto& files = handle.value().segment_files;
  for (std::size_t i = 0; i < files.size() / 2; ++i) {
    ASSERT_TRUE(client->discard_file(files[i]).is_ok());
  }
  sim->run_until(400);  // Auto_CheckProof removes the discarded segments
  std::optional<std::vector<std::uint8_t>> recovered;
  client->retrieve_large_file(handle.value(),
                              [&](auto bytes) { recovered = std::move(bytes); });
  sim->run_until(900);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, data);
}

TEST_F(LargeFileFixture, MoreThanHalfLostFailsButCompensationCoversValue) {
  build();
  const auto data = random_bytes(7000, 5);
  const TokenAmount value = 400;
  auto handle = client->store_large_file(data, value, 2000);
  ASSERT_TRUE(handle.is_ok());
  sim->run_until(200);

  // Destroy every provider: all segments are lost the hard way.
  for (ProviderAgent* p : agents) p->crash();
  sim->run_until(1200);

  std::optional<std::vector<std::uint8_t>> recovered;
  bool done = false;
  client->retrieve_large_file(handle.value(), [&](auto bytes) {
    done = true;
    recovered = std::move(bytes);
  });
  sim->run_until(1400);
  ASSERT_TRUE(done);
  EXPECT_FALSE(recovered.has_value());

  // §VI-C guarantee: per-segment compensation sums to at least the file's
  // declared value.
  TokenAmount compensated = 0;
  for (const Event& e : sim->event_log()) {
    if (const auto* lost = std::get_if<FileLost>(&e)) {
      compensated += lost->compensated_now;
    }
  }
  EXPECT_GE(compensated, value);
}

}  // namespace
}  // namespace fi::core
