#include <gtest/gtest.h>

#include <vector>

#include "core/agents.h"
#include "crypto/merkle.h"

namespace fi::core {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// Full-stack parameters: real PoRep/PoSt on small files.
Params agent_params() {
  Params p;
  p.min_capacity = 4096;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 10.0;
  p.gamma_deposit = 0.5;
  p.proof_cycle = 50;
  p.proof_due = 75;
  p.proof_deadline = 150;
  p.avg_refresh = 1000.0;  // no refresh by default
  p.delay_per_kib = 5;
  p.min_transfer_window = 5;
  p.verify_proofs = true;
  p.seal = {.work = 1, .challenges = 2};
  p.post_challenges = 2;
  p.cr_size = 1024;
  return p;
}

struct AgentsFixture : ::testing::Test {
  void build(Params p, int providers = 4, int sectors_each = 1,
             ByteCount capacity = 8 * 4096, std::uint64_t seed = 0xabc) {
    sim = std::make_unique<Simulation>(p, seed);
    client = &sim->add_client(1'000'000);
    for (int i = 0; i < providers; ++i) {
      ProviderAgent& provider = sim->add_provider(10'000'000);
      for (int s = 0; s < sectors_each; ++s) {
        auto id = provider.register_sector(capacity);
        ASSERT_TRUE(id.is_ok()) << id.status().to_string();
      }
      agents.push_back(&provider);
    }
  }

  template <typename E>
  [[nodiscard]] std::vector<E> events_of() const {
    std::vector<E> out;
    for (const Event& e : sim->event_log()) {
      if (const E* ev = std::get_if<E>(&e)) out.push_back(*ev);
    }
    return out;
  }

  std::unique_ptr<Simulation> sim;
  ClientAgent* client = nullptr;
  std::vector<ProviderAgent*> agents;
};

// ---------------------------------------------------------------------------
// End-to-end storage with real PoRep
// ---------------------------------------------------------------------------

TEST_F(AgentsFixture, StoreFileEndToEnd) {
  build(agent_params());
  const auto data = random_bytes(1500, 1);
  auto id = client->store_file(data, 20);  // cp = 4
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  sim->run_until(100);

  EXPECT_EQ(events_of<FileStored>().size(), 1u);
  EXPECT_TRUE(events_of<UploadFailed>().empty());
  auto& net = sim->network();
  ASSERT_TRUE(net.file_exists(id.value()));
  // Every entry is active with a registered, *verified* replica commitment.
  for (ReplicaIndex i = 0; i < 4; ++i) {
    const AllocEntry& e = net.allocations().entry(id.value(), i);
    EXPECT_EQ(e.state, AllocState::normal);
    EXPECT_FALSE(e.comm_r.is_zero());
  }
  // Providers hold sealed replicas and their DRep invariants hold.
  std::size_t held = 0;
  for (ProviderAgent* p : agents) {
    held += p->replica_count();
    for (SectorId s : p->sectors()) {
      EXPECT_TRUE(p->drep(s).invariant_holds());
    }
  }
  EXPECT_EQ(held, 4u);
}

TEST_F(AgentsFixture, WindowPoStKeepsFileAliveThroughManyCycles) {
  build(agent_params());
  const auto data = random_bytes(800, 2);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  sim->run_until(1000);  // ~20 proof cycles
  EXPECT_TRUE(sim->network().file_exists(id.value()));
  EXPECT_EQ(sim->network().stats().punishments, 0u);
  EXPECT_EQ(sim->network().stats().sectors_corrupted, 0u);
}

TEST_F(AgentsFixture, RetrievalReturnsOriginalBytes) {
  build(agent_params());
  const auto data = random_bytes(2000, 3);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  bool done = false, ok = false;
  client->retrieve(id.value(), [&](bool success) {
    done = true;
    ok = success;
  });
  sim->run_until(200);
  EXPECT_TRUE(done);
  EXPECT_TRUE(ok);
}

TEST_F(AgentsFixture, SelfishProvidersAreRoutedAround) {
  build(agent_params());
  const auto data = random_bytes(1200, 4);
  auto id = client->store_file(data, 10);  // cp = 2
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  // Make every provider but one selfish (§VI-E).
  for (std::size_t i = 0; i + 1 < agents.size(); ++i) {
    agents[i]->serve_retrieval = false;
  }
  bool done = false, ok = false;
  client->retrieve(id.value(), [&](bool success) {
    done = true;
    ok = success;
  });
  sim->run_until(300);
  EXPECT_TRUE(done);
  // Succeeds iff some cooperative provider holds a replica; with cp=2 of 4
  // providers this can legitimately fail, so only assert no crash and a
  // completed callback. Stronger guarantee tested below with all-honest.
  (void)ok;
}

TEST_F(AgentsFixture, LazyProviderCausesUploadFailure) {
  build(agent_params());
  agents[0]->confirm_enabled = false;
  agents[1]->confirm_enabled = false;
  agents[2]->confirm_enabled = false;
  agents[3]->confirm_enabled = false;
  const auto data = random_bytes(700, 5);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  EXPECT_EQ(events_of<UploadFailed>().size(), 1u);
  EXPECT_FALSE(sim->network().file_exists(id.value()));
}

// ---------------------------------------------------------------------------
// Crash, detection via missed proofs, compensation
// ---------------------------------------------------------------------------

TEST_F(AgentsFixture, CrashedProvidersDetectedAndConfiscated) {
  build(agent_params());
  const auto data = random_bytes(1000, 6);
  auto id = client->store_file(data, 10);  // cp=2
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  ASSERT_TRUE(sim->network().file_exists(id.value()));

  // Crash every provider holding a replica: data is physically gone; the
  // chain finds out when proofs stop arriving (ProofDeadline).
  for (ProviderAgent* p : agents) {
    if (p->replica_count() > 0) p->crash();
  }
  sim->run_until(1000);

  EXPECT_FALSE(sim->network().file_exists(id.value()));
  const auto lost = events_of<FileLost>();
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].value, 10u);
  EXPECT_EQ(lost[0].compensated_now, 10u);
  // The full value flowed out of the pool (rent paid during the detection
  // window is a separate, legitimate cost).
  EXPECT_EQ(sim->network().deposits().total_compensated(), 10u);
  EXPECT_GT(sim->network().stats().sectors_corrupted, 0u);
}

TEST_F(AgentsFixture, SingleCrashDoesNotLoseFile) {
  build(agent_params());
  const auto data = random_bytes(1000, 7);
  auto id = client->store_file(data, 20);  // cp=4
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  // Crash exactly one holder.
  for (ProviderAgent* p : agents) {
    if (p->replica_count() > 0) {
      p->crash();
      break;
    }
  }
  sim->run_until(1500);
  EXPECT_TRUE(sim->network().file_exists(id.value()));
  EXPECT_TRUE(events_of<FileLost>().empty());
  // And the file is still retrievable from surviving replicas.
  bool ok = false;
  client->retrieve(id.value(), [&](bool success) { ok = success; });
  sim->run_until(1700);
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Refresh with real re-sealing
// ---------------------------------------------------------------------------

TEST_F(AgentsFixture, RefreshMovesSealedReplicas) {
  Params p = agent_params();
  p.avg_refresh = 1.0;  // refresh nearly every cycle
  build(p, 6);
  const auto data = random_bytes(900, 8);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  sim->run_until(2000);
  const auto& stats = sim->network().stats();
  EXPECT_GT(stats.refreshes_started, 0u);
  EXPECT_GT(stats.refreshes_completed, 0u);
  EXPECT_EQ(stats.refreshes_failed, 0u) << "honest handoffs must not fail";
  EXPECT_TRUE(sim->network().file_exists(id.value()));
  // After all that churn the content is still intact.
  bool ok = false;
  client->retrieve(id.value(), [&](bool success) { ok = success; });
  sim->run_until(2300);
  EXPECT_TRUE(ok);
}

TEST_F(AgentsFixture, RefreshSurvivesSourceCrashViaOtherHolders) {
  Params p = agent_params();
  p.avg_refresh = 2.0;
  build(p, 6);
  const auto data = random_bytes(900, 9);
  auto id = client->store_file(data, 20);  // cp=4
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  // One holder goes selfish about refresh handoffs: successors fetch the
  // data from other holders (§III-D liveness argument).
  for (ProviderAgent* a : agents) {
    if (a->replica_count() > 0) {
      a->serve_refresh = false;
      break;
    }
  }
  sim->run_until(2000);
  EXPECT_TRUE(sim->network().file_exists(id.value()));
  EXPECT_GT(sim->network().stats().refreshes_completed, 0u);
}

// ---------------------------------------------------------------------------
// Forgery attempts against the chain
// ---------------------------------------------------------------------------

TEST_F(AgentsFixture, ForgedConfirmRejected) {
  build(agent_params());
  const auto data = random_bytes(600, 10);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  // Find a pending entry and try to confirm with a bogus commitment.
  auto& net = sim->network();
  const AllocEntry& e = net.allocations().entry(id.value(), 0);
  const ProviderId owner = net.sectors().at(e.next).owner;
  crypto::Hash256 bogus;
  bogus.bytes[0] = 1;
  EXPECT_EQ(
      net.file_confirm(owner, id.value(), 0, e.next, bogus, std::nullopt)
          .code(),
      util::ErrorCode::proof_invalid);
  // A real seal proof for the *wrong data* also fails (comm_d mismatch).
  const auto wrong = random_bytes(600, 11);
  const crypto::ReplicaId rid{owner, e.next, replica_nonce(id.value(), 0)};
  const auto sealed = crypto::seal(wrong, rid, sim->params().seal);
  const auto proof =
      crypto::prove_seal(wrong, sealed, rid, sim->params().seal);
  EXPECT_EQ(net.file_confirm(owner, id.value(), 0, e.next,
                             crypto::replica_commitment(sealed), proof)
                .code(),
            util::ErrorCode::proof_invalid);
}

TEST_F(AgentsFixture, SybilReplicaReuseRejected) {
  // One provider may hold two replica slots of the same file, but each slot
  // demands its own seal: submitting slot-0's sealed bytes for slot 1 fails.
  build(agent_params(), 2);
  const auto data = random_bytes(600, 12);
  auto id = client->store_file(data, 10);  // cp=2 over 2 providers
  ASSERT_TRUE(id.is_ok());
  auto& net = sim->network();
  const AllocEntry& e0 = net.allocations().entry(id.value(), 0);
  const AllocEntry& e1 = net.allocations().entry(id.value(), 1);
  const ProviderId owner0 = net.sectors().at(e0.next).owner;
  // Build the legitimate seal for slot 0...
  const crypto::ReplicaId rid0{owner0, e0.next, replica_nonce(id.value(), 0)};
  const auto sealed0 = crypto::seal(data, rid0, sim->params().seal);
  const auto proof0 = crypto::prove_seal(data, sealed0, rid0,
                                         sim->params().seal);
  // ...and try to pass it off for slot 1 (same provider pretending two
  // replicas are one copy). The replica id embeds the slot, so this fails.
  EXPECT_EQ(net.file_confirm(owner0, id.value(), 1, e1.next,
                             crypto::replica_commitment(sealed0), proof0)
                .code(),
            net.sectors().at(e1.next).owner == owner0
                ? util::ErrorCode::proof_invalid
                : util::ErrorCode::permission_denied);
}

TEST_F(AgentsFixture, ForgedWindowProofRejected) {
  build(agent_params());
  const auto data = random_bytes(600, 13);
  auto id = client->store_file(data, 10);
  ASSERT_TRUE(id.is_ok());
  sim->run_until(100);
  auto& net = sim->network();
  const AllocEntry& e = net.allocations().entry(id.value(), 0);
  const ProviderId owner = net.sectors().at(e.prev).owner;
  // A prover who discarded the data and kept only random bytes cannot
  // answer the beacon's challenges.
  const auto junk = random_bytes(600, 14);
  const crypto::ReplicaId rid{owner, e.prev, replica_nonce(id.value(), 0)};
  auto forged = crypto::prove_window(junk, rid, net.beacon(net.now()),
                                     net.now(), net.params().post_challenges);
  forged.comm_r = e.comm_r;  // claim the registered commitment
  EXPECT_EQ(net.file_prove(owner, id.value(), 0, e.prev, forged).code(),
            util::ErrorCode::proof_invalid);
}

// ---------------------------------------------------------------------------
// Economics and determinism
// ---------------------------------------------------------------------------

TEST_F(AgentsFixture, MoneyConservedEndToEnd) {
  build(agent_params(), 5);
  auto total = [&] {
    TokenAmount t = sim->ledger().balance(client->account());
    for (ProviderAgent* p : agents) t += sim->ledger().balance(p->account());
    auto& net = sim->network();
    t += sim->ledger().balance(net.escrow_account());
    t += sim->ledger().balance(net.pool_account());
    t += sim->ledger().balance(net.rent_pool_account());
    t += sim->ledger().balance(net.gas_sink_account());
    t += sim->ledger().balance(net.traffic_escrow_account());
    return t;
  };
  const TokenAmount initial = total();
  auto id1 = client->store_file(random_bytes(1000, 15), 20);
  auto id2 = client->store_file(random_bytes(500, 16), 10);
  ASSERT_TRUE(id1.is_ok());
  ASSERT_TRUE(id2.is_ok());
  sim->run_until(300);
  agents[0]->crash();
  ASSERT_TRUE(client->discard_file(id2.value()).is_ok());
  sim->run_until(1500);
  EXPECT_EQ(total(), initial);
  EXPECT_EQ(sim->ledger().total_supply(), initial);
}

TEST_F(AgentsFixture, DeterministicUnderFixedSeed) {
  auto run = [](std::uint64_t seed) {
    Simulation fresh_sim(agent_params(), seed);
    ClientAgent& fresh_client = fresh_sim.add_client(1'000'000);
    std::vector<ProviderAgent*> providers;
    for (int i = 0; i < 4; ++i) {
      ProviderAgent& p = fresh_sim.add_provider(10'000'000);
      (void)p.register_sector(8 * 4096);
      providers.push_back(&p);
    }
    util::Xoshiro256 rng(seed);
    std::vector<std::uint8_t> data(1200);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    (void)fresh_client.store_file(data, 20);
    fresh_sim.run_until(800);
    return std::make_tuple(fresh_sim.network().stats().files_stored,
                           fresh_sim.network().stats().refreshes_started,
                           fresh_sim.event_log().size(),
                           fresh_sim.ledger().balance(fresh_client.account()));
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(std::get<3>(run(1234)), 0u);
}

}  // namespace
}  // namespace fi::core
