#include <gtest/gtest.h>

#include "crypto/post.h"
#include "ledger/account.h"
#include "ledger/chain.h"
#include "ledger/consensus.h"
#include "ledger/gas.h"
#include "util/prng.h"

namespace fi::ledger {
namespace {

// ---------------------------------------------------------------------------
// Accounts
// ---------------------------------------------------------------------------

TEST(Accounts, CreateAndQuery) {
  Ledger ledger;
  const AccountId a = ledger.create_account(100);
  const AccountId b = ledger.create_account();
  EXPECT_TRUE(ledger.exists(a));
  EXPECT_TRUE(ledger.exists(b));
  EXPECT_NE(a, b);
  EXPECT_EQ(ledger.balance(a), 100u);
  EXPECT_EQ(ledger.balance(b), 0u);
  EXPECT_EQ(ledger.total_supply(), 100u);
}

TEST(Accounts, TransferMovesExactAmount) {
  Ledger ledger;
  const AccountId a = ledger.create_account(100);
  const AccountId b = ledger.create_account(5);
  ASSERT_TRUE(ledger.transfer(a, b, 30).is_ok());
  EXPECT_EQ(ledger.balance(a), 70u);
  EXPECT_EQ(ledger.balance(b), 35u);
  EXPECT_EQ(ledger.total_supply(), 105u);
}

TEST(Accounts, OverdraftRejectedWithoutSideEffects) {
  Ledger ledger;
  const AccountId a = ledger.create_account(10);
  const AccountId b = ledger.create_account(0);
  const auto status = ledger.transfer(a, b, 11);
  EXPECT_EQ(status.code(), util::ErrorCode::insufficient_funds);
  EXPECT_EQ(ledger.balance(a), 10u);
  EXPECT_EQ(ledger.balance(b), 0u);
}

TEST(Accounts, UnknownAccountsRejected) {
  Ledger ledger;
  const AccountId a = ledger.create_account(10);
  EXPECT_EQ(ledger.transfer(a, 999, 1).code(), util::ErrorCode::not_found);
  EXPECT_EQ(ledger.transfer(999, a, 1).code(), util::ErrorCode::not_found);
  EXPECT_EQ(ledger.mint(999, 1).code(), util::ErrorCode::not_found);
}

TEST(Accounts, MintGrowsSupply) {
  Ledger ledger;
  const AccountId a = ledger.create_account(1);
  ASSERT_TRUE(ledger.mint(a, 41).is_ok());
  EXPECT_EQ(ledger.balance(a), 42u);
  EXPECT_EQ(ledger.total_supply(), 42u);
}

TEST(Accounts, SupplyConservedUnderTransferStorm) {
  Ledger ledger;
  util::Xoshiro256 rng(7);
  std::vector<AccountId> accounts;
  for (int i = 0; i < 20; ++i) accounts.push_back(ledger.create_account(1000));
  for (int i = 0; i < 10'000; ++i) {
    const AccountId from = accounts[rng.uniform_below(accounts.size())];
    const AccountId to = accounts[rng.uniform_below(accounts.size())];
    (void)ledger.transfer(from, to, rng.uniform_below(200));
  }
  TokenAmount total = 0;
  for (AccountId a : accounts) total += ledger.balance(a);
  EXPECT_EQ(total, 20'000u);
  EXPECT_EQ(ledger.total_supply(), 20'000u);
}

// ---------------------------------------------------------------------------
// Gas
// ---------------------------------------------------------------------------

TEST(Gas, MeterTracksAndLimits) {
  GasMeter meter(10);
  EXPECT_TRUE(meter.consume(4));
  EXPECT_TRUE(meter.consume(6));
  EXPECT_EQ(meter.used(), 10u);
  EXPECT_FALSE(meter.exhausted());
  EXPECT_FALSE(meter.consume(1));
  EXPECT_TRUE(meter.exhausted());
}

// ---------------------------------------------------------------------------
// Chain
// ---------------------------------------------------------------------------

TEST(Chain, GenesisBeaconDeterministic) {
  Chain a(42), b(42), c(43);
  EXPECT_EQ(a.beacon(0), b.beacon(0));
  EXPECT_NE(a.beacon(0), c.beacon(0));
}

TEST(Chain, AppendLinksBlocks) {
  Chain chain(1);
  const Block& b0 = chain.append(10, 1, {});
  const Block& b1 = chain.append(20, 2, {{"File_Add", 5, {}}});
  EXPECT_EQ(b0.height, 0u);
  EXPECT_EQ(b1.height, 1u);
  EXPECT_EQ(b1.parent, chain.at(0).hash());
  EXPECT_TRUE(chain.validate());
}

TEST(Chain, BeaconEvolvesPerEpoch) {
  Chain chain(1);
  chain.append(1, 1, {});
  chain.append(2, 1, {});
  chain.append(3, 1, {});
  EXPECT_NE(chain.beacon(0), chain.beacon(1));
  EXPECT_NE(chain.beacon(1), chain.beacon(2));
}

TEST(Chain, TamperDetectedByValidate) {
  Chain chain(1);
  chain.append(1, 1, {});
  chain.append(2, 1, {{"Sector_Register", 9, {}}});
  // Rebuild an identical chain and check a different tx payload changes the
  // block hash (so parent links break on tamper).
  Chain other(1);
  other.append(1, 1, {});
  other.append(2, 1, {{"Sector_Register", 8, {}}});
  EXPECT_NE(chain.at(1).hash(), other.at(1).hash());
}

TEST(Chain, BlockHashCoversTransactions) {
  Block a;
  a.txs.push_back({"File_Add", 1, crypto::hash_u64s("p", {1})});
  Block b = a;
  b.txs[0].payload_hash = crypto::hash_u64s("p", {2});
  EXPECT_NE(a.hash(), b.hash());
}

// ---------------------------------------------------------------------------
// Expected-consensus election
// ---------------------------------------------------------------------------

TEST(Consensus, ZeroPowerNeverWins) {
  const crypto::Hash256 beacon = crypto::hash_u64s("b", {1});
  const crypto::Hash256 ticket = crypto::winning_ticket(beacon, 1, {});
  EXPECT_FALSE(election_wins(ticket, 0, 100));
}

TEST(Consensus, FullPowerAlwaysWins) {
  const crypto::Hash256 beacon = crypto::hash_u64s("b", {2});
  for (AccountId miner = 0; miner < 50; ++miner) {
    const crypto::Hash256 ticket = crypto::winning_ticket(beacon, miner, {});
    EXPECT_TRUE(election_wins(ticket, 100, 100));
  }
}

TEST(Consensus, WinRateTracksPowerShare) {
  // A miner with 30% power should win ~1 - (1-0.3) = 30% of epochs at
  // expected_winners = 1.
  std::vector<PowerEntry> table{
      {1, 30, crypto::hash_u64s("c", {1})},
      {2, 70, crypto::hash_u64s("c", {2})},
  };
  int wins_small = 0, wins_big = 0;
  constexpr int kEpochs = 20'000;
  for (int e = 0; e < kEpochs; ++e) {
    const crypto::Hash256 beacon =
        crypto::hash_u64s("epoch", {static_cast<std::uint64_t>(e)});
    const auto winners = run_election(beacon, table);
    for (AccountId w : winners) {
      if (w == 1) ++wins_small;
      if (w == 2) ++wins_big;
    }
  }
  EXPECT_NEAR(wins_small / double(kEpochs), 0.30, 0.02);
  EXPECT_NEAR(wins_big / double(kEpochs), 0.70, 0.02);
}

TEST(Consensus, ProposerIsAWinnerOrAbsent) {
  std::vector<PowerEntry> table{
      {1, 10, crypto::hash_u64s("c", {1})},
      {2, 10, crypto::hash_u64s("c", {2})},
      {3, 80, crypto::hash_u64s("c", {3})},
  };
  int proposals = 0;
  for (int e = 0; e < 2000; ++e) {
    const crypto::Hash256 beacon =
        crypto::hash_u64s("epoch2", {static_cast<std::uint64_t>(e)});
    const auto proposer = elect_proposer(beacon, table);
    const auto winners = run_election(beacon, table);
    if (proposer.has_value()) {
      ++proposals;
      EXPECT_NE(std::find(winners.begin(), winners.end(), *proposer),
                winners.end());
    } else {
      EXPECT_TRUE(winners.empty());
    }
  }
  // With total power split this way some epochs elect nobody, but most do.
  EXPECT_GT(proposals, 1000);
}

}  // namespace
}  // namespace fi::ledger
