#include <gtest/gtest.h>

#include <vector>

#include "ipfs/bitswap.h"
#include "ipfs/cid.h"
#include "ipfs/content_store.h"
#include "ipfs/dht.h"
#include "ipfs/merkle_dag.h"
#include "util/prng.h"

namespace fi::ipfs {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// ---------------------------------------------------------------------------
// CID + content store
// ---------------------------------------------------------------------------

TEST(Cid, ContentAddressing) {
  const auto a = make_cid(Codec::raw, random_bytes(100, 1));
  const auto b = make_cid(Codec::raw, random_bytes(100, 1));
  const auto c = make_cid(Codec::raw, random_bytes(100, 2));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Codec participates in identity.
  EXPECT_NE(make_cid(Codec::raw, random_bytes(8, 3)),
            make_cid(Codec::dag_node, random_bytes(8, 3)));
}

TEST(ContentStore, PutGetRemove) {
  ContentStore store;
  const auto data = random_bytes(64, 4);
  const Cid cid = store.put(Codec::raw, data);
  EXPECT_TRUE(store.has(cid));
  EXPECT_EQ(store.get(cid), data);
  EXPECT_EQ(store.total_bytes(), 64u);
  EXPECT_TRUE(store.remove(cid));
  EXPECT_FALSE(store.has(cid));
  EXPECT_EQ(store.total_bytes(), 0u);
  EXPECT_FALSE(store.remove(cid));
}

TEST(ContentStore, DeduplicatesIdenticalBlocks) {
  ContentStore store;
  store.put(Codec::raw, random_bytes(64, 5));
  store.put(Codec::raw, random_bytes(64, 5));
  EXPECT_EQ(store.block_count(), 1u);
  EXPECT_EQ(store.total_bytes(), 64u);
}

// ---------------------------------------------------------------------------
// Merkle DAG
// ---------------------------------------------------------------------------

TEST(MerkleDag, FileRoundTripAcrossShapes) {
  for (std::size_t size : {0u, 1u, 1023u, 1024u, 1025u, 8192u, 100'000u}) {
    ContentStore store;
    const auto data = random_bytes(size, 10 + size);
    const Cid root = dag_put_file(store, data, {.chunk_size = 1024, .fanout = 4});
    const auto back = dag_get_file(store, root);
    ASSERT_TRUE(back.is_ok()) << "size=" << size;
    EXPECT_EQ(back.value(), data) << "size=" << size;
  }
}

TEST(MerkleDag, IdenticalContentSharesBlocks) {
  ContentStore store;
  const auto data = random_bytes(10'000, 11);
  const Cid r1 = dag_put_file(store, data);
  const std::size_t blocks_after_first = store.block_count();
  const Cid r2 = dag_put_file(store, data);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(store.block_count(), blocks_after_first);
}

TEST(MerkleDag, MissingBlockFailsRetrieval) {
  ContentStore store;
  const auto data = random_bytes(10'000, 12);
  const Cid root = dag_put_file(store, data, {.chunk_size = 512, .fanout = 4});
  const auto cids = dag_enumerate(store, root);
  ASSERT_TRUE(cids.is_ok());
  ASSERT_GT(cids.value().size(), 2u);
  // Remove one leaf from the middle.
  store.remove(cids.value()[cids.value().size() / 2]);
  EXPECT_FALSE(dag_get_file(store, root).is_ok());
}

TEST(MerkleDag, NodeSerializationRoundTrip) {
  DagNode node;
  node.subtree_bytes = 12345;
  node.children.push_back(make_cid(Codec::raw, random_bytes(8, 13)));
  node.children.push_back(make_cid(Codec::dag_node, random_bytes(8, 14)));
  const auto back = DagNode::deserialize(node.serialize());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().subtree_bytes, 12345u);
  EXPECT_EQ(back.value().children, node.children);
}

TEST(MerkleDag, MalformedNodeRejected) {
  EXPECT_FALSE(DagNode::deserialize({1, 2, 3}).is_ok());
  DagNode node;
  node.children.push_back(make_cid(Codec::raw, random_bytes(8, 15)));
  auto bytes = node.serialize();
  bytes.pop_back();
  EXPECT_FALSE(DagNode::deserialize(bytes).is_ok());
}

// ---------------------------------------------------------------------------
// DHT
// ---------------------------------------------------------------------------

TEST(DhtTest, FindsProvidersAcrossTheNetwork) {
  Dht dht(8);
  for (std::uint64_t n = 0; n < 100; ++n) dht.join(n);
  const Cid cid = make_cid(Codec::raw, random_bytes(100, 20));
  dht.provide(42, cid);
  dht.provide(17, cid);
  for (std::uint64_t from : {0ull, 55ull, 99ull}) {
    const auto result = dht.find_providers(from, cid);
    EXPECT_EQ(result.providers, (std::vector<std::uint64_t>{17, 42}))
        << "from=" << from;
  }
}

TEST(DhtTest, LookupHopsAreLogarithmic) {
  Dht dht(8);
  for (std::uint64_t n = 0; n < 500; ++n) dht.join(n);
  const Cid cid = make_cid(Codec::raw, random_bytes(100, 21));
  dht.provide(3, cid);
  const auto result = dht.find_providers(450, cid);
  EXPECT_FALSE(result.providers.empty());
  // Far below a linear scan of 500 peers.
  EXPECT_LT(result.hops, 60u);
}

TEST(DhtTest, UnknownKeyReturnsNoProviders) {
  Dht dht(4);
  for (std::uint64_t n = 0; n < 30; ++n) dht.join(n);
  const Cid cid = make_cid(Codec::raw, random_bytes(100, 22));
  EXPECT_TRUE(dht.find_providers(0, cid).providers.empty());
}

TEST(DhtTest, RecordsReplicatedAcrossKClosest) {
  // Records survive single-holder departure thanks to k-replication.
  Dht dht(8);
  for (std::uint64_t n = 0; n < 60; ++n) dht.join(n);
  const Cid cid = make_cid(Codec::raw, random_bytes(100, 23));
  dht.provide(7, cid);
  // Remove two arbitrary peers (possibly record holders).
  dht.leave(11);
  dht.leave(29);
  const auto result = dht.find_providers(50, cid);
  EXPECT_EQ(result.providers, (std::vector<std::uint64_t>{7}));
}

TEST(DhtTest, XorDistanceIsAMetric) {
  const PeerId a = peer_id_from_node(1);
  const PeerId b = peer_id_from_node(2);
  EXPECT_EQ(xor_distance(a, a), XorDistance{});
  EXPECT_EQ(xor_distance(a, b), xor_distance(b, a));
}

// ---------------------------------------------------------------------------
// BitSwap over the simulated network
// ---------------------------------------------------------------------------

struct BitswapNode {
  ContentStore store;
  std::unique_ptr<BitswapEngine> engine;
};

TEST(Bitswap, FetchesWholeDagFromPeer) {
  sim::EventQueue queue;
  sim::Network net(queue, 7);
  BitswapNode alice, bob;
  const sim::NodeId na = net.add_node(
      [&](const sim::Message& m) { alice.engine->handle(m); });
  const sim::NodeId nb = net.add_node(
      [&](const sim::Message& m) { bob.engine->handle(m); });
  alice.engine = std::make_unique<BitswapEngine>(net, na, alice.store);
  bob.engine = std::make_unique<BitswapEngine>(net, nb, bob.store);

  const auto data = random_bytes(20'000, 30);
  const Cid root =
      dag_put_file(bob.store, data, {.chunk_size = 1024, .fanout = 4});

  bool done = false, ok = false;
  alice.engine->fetch_dag(nb, root, [&](const Cid& r, bool complete) {
    done = true;
    ok = complete;
    EXPECT_EQ(r, root);
  });
  queue.run_all();
  ASSERT_TRUE(done);
  ASSERT_TRUE(ok);
  const auto back = dag_get_file(alice.store, root);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), data);
  // Traffic ledger: bob sent at least the file size to alice.
  EXPECT_GE(bob.engine->bytes_sent_to(na), data.size());
  EXPECT_GE(alice.engine->bytes_received_from(nb), data.size());
}

TEST(Bitswap, MissingBlockReportsIncomplete) {
  sim::EventQueue queue;
  sim::Network net(queue, 8);
  BitswapNode alice, bob;
  const sim::NodeId na = net.add_node(
      [&](const sim::Message& m) { alice.engine->handle(m); });
  const sim::NodeId nb = net.add_node(
      [&](const sim::Message& m) { bob.engine->handle(m); });
  alice.engine = std::make_unique<BitswapEngine>(net, na, alice.store);
  bob.engine = std::make_unique<BitswapEngine>(net, nb, bob.store);

  const auto data = random_bytes(8000, 31);
  const Cid root =
      dag_put_file(bob.store, data, {.chunk_size = 512, .fanout = 4});
  const auto cids = dag_enumerate(bob.store, root);
  ASSERT_TRUE(cids.is_ok());
  bob.store.remove(cids.value().back());  // bob lost one leaf

  bool done = false, ok = true;
  alice.engine->fetch_dag(nb, root, [&](const Cid&, bool complete) {
    done = true;
    ok = complete;
  });
  queue.run_all();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST(Bitswap, ServesWantsFromLocalStore) {
  sim::EventQueue queue;
  sim::Network net(queue, 9);
  BitswapNode alice, bob;
  const sim::NodeId na = net.add_node(
      [&](const sim::Message& m) { alice.engine->handle(m); });
  const sim::NodeId nb = net.add_node(
      [&](const sim::Message& m) { bob.engine->handle(m); });
  alice.engine = std::make_unique<BitswapEngine>(net, na, alice.store);
  bob.engine = std::make_unique<BitswapEngine>(net, nb, bob.store);

  // Alice already has the file: fetch completes without network bytes of
  // payload flowing from bob.
  const auto data = random_bytes(5000, 32);
  const Cid root = dag_put_file(alice.store, data);
  dag_put_file(bob.store, data);

  bool ok = false;
  alice.engine->fetch_dag(nb, root, [&](const Cid&, bool complete) {
    ok = complete;
  });
  queue.run_all();
  EXPECT_TRUE(ok);
  EXPECT_EQ(alice.engine->bytes_received_from(nb), 0u);
}

}  // namespace
}  // namespace fi::ipfs
