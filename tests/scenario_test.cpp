// Scenario engine: config parsing, spec round-trips, malformed-config
// rejection, deterministic reports, and equivalence of a runner-driven
// workload with the same requests issued directly against core::Network.

#include <fstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "core/network.h"
#include "ledger/account.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/config.h"
#include "util/prng.h"

namespace {

using fi::core::Network;
using fi::core::NetworkStats;
using fi::scenario::PhaseKind;
using fi::scenario::PhaseSpec;
using fi::scenario::ScenarioRunner;
using fi::scenario::ScenarioSpec;
using fi::util::Config;

// ---- util::Config ---------------------------------------------------------

TEST(ConfigTest, ParsesKeyValueLines) {
  const auto config = Config::parse(
      "# comment\n"
      "name = demo   ; trailing comment\n"
      "seed = 1_000_000\n"
      "\n"
      "net.cap_para = 12.5\n"
      "net.distinct_sectors = true\n");
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_EQ(config.value().get_string("name").value(), "demo");
  EXPECT_EQ(config.value().get_u64("seed").value(), 1'000'000u);
  EXPECT_DOUBLE_EQ(config.value().get_double("net.cap_para").value(), 12.5);
  EXPECT_TRUE(config.value().get_bool("net.distinct_sectors").value());
  EXPECT_TRUE(config.value().unconsumed_keys().empty());
}

TEST(ConfigTest, ParsesFlatJson) {
  const auto config = Config::parse(
      R"({"name": "demo", "seed": 42, "net.cap_para": 12.5,
          "net.distinct_sectors": true})");
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  EXPECT_EQ(config.value().get_string("name").value(), "demo");
  EXPECT_EQ(config.value().get_u64("seed").value(), 42u);
  EXPECT_DOUBLE_EQ(config.value().get_double("net.cap_para").value(), 12.5);
  EXPECT_TRUE(config.value().get_bool("net.distinct_sectors").value());
}

TEST(ConfigTest, RejectsMalformedInput) {
  EXPECT_FALSE(Config::parse("just words without equals\n").is_ok());
  EXPECT_FALSE(Config::parse("a = 1\na = 2\n").is_ok());      // duplicate
  EXPECT_FALSE(Config::parse("bad key! = 1\n").is_ok());      // key charset
  EXPECT_FALSE(Config::parse("{\"a\": 1").is_ok());           // unterminated
  EXPECT_FALSE(Config::parse("{\"a\": 1} trailing").is_ok());
}

TEST(ConfigTest, TypedGettersValidateStrictly) {
  const auto config =
      Config::parse("n = 12x\nd = 1.5.2\nb = maybe\nneg = -3\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_FALSE(config.value().get_u64("n").is_ok());
  EXPECT_FALSE(config.value().get_double("d").is_ok());
  EXPECT_FALSE(config.value().get_bool("b").is_ok());
  EXPECT_FALSE(config.value().get_u64("neg").is_ok());
  EXPECT_FALSE(config.value().get_u64("absent").is_ok());
  EXPECT_EQ(config.value().get_u64_or("absent", 7).value(), 7u);
}

TEST(ConfigTest, TracksUnconsumedKeys) {
  const auto config = Config::parse("a = 1\nb = 2\nc = 3\n");
  ASSERT_TRUE(config.is_ok());
  (void)config.value().get_u64("b");
  const auto unread = config.value().unconsumed_keys();
  ASSERT_EQ(unread.size(), 2u);
  EXPECT_EQ(unread[0], "a");
  EXPECT_EQ(unread[1], "c");
}

// ---- ScenarioSpec ---------------------------------------------------------

ScenarioSpec mini_spec() {
  ScenarioSpec spec;
  spec.name = "mini";
  spec.seed = 5;
  spec.sectors = 50;
  spec.sector_units = 4;
  spec.initial_files = 120;
  spec.file_size_min = 1024;
  spec.file_size_max = 2048;
  spec.file_value = 10;
  spec.params.min_value = 10;
  spec.params.k = 3;
  spec.params.cap_para = 100.0;
  spec.params.gamma_deposit = 0.05;
  return spec;
}

TEST(ScenarioSpecTest, ConfigRoundTripIsLossless) {
  ScenarioSpec spec = mini_spec();
  spec.params.avg_refresh = 12.25;
  spec.phases.push_back(PhaseSpec::make_churn(3, 40, 0.125, true));
  spec.phases.push_back(PhaseSpec::make_corrupt_burst(0.0625, 2));
  spec.phases.push_back(PhaseSpec::make_selfish_refresh(0.3, 7));
  spec.phases.push_back(PhaseSpec::make_admit(9, 2));
  spec.phases.push_back(PhaseSpec::make_rent_audit(4));
  spec.phases.push_back(PhaseSpec::make_idle(1));
  spec.phases.back().label = "cooldown";

  const std::string text = spec.to_config_string();
  const auto config = Config::parse(text);
  ASSERT_TRUE(config.is_ok()) << config.status().to_string();
  const auto reparsed = ScenarioSpec::from_config(config.value());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().to_config_string(), text);
  EXPECT_EQ(reparsed.value().phases.size(), 6u);
  EXPECT_EQ(reparsed.value().phases[5].label, "cooldown");
}

fi::util::Status spec_error(const std::string& text) {
  const auto config = Config::parse(text);
  if (!config.is_ok()) return config.status();
  const auto spec = ScenarioSpec::from_config(config.value());
  EXPECT_FALSE(spec.is_ok()) << "config unexpectedly accepted:\n" << text;
  return spec.is_ok() ? fi::util::Status::ok() : spec.status();
}

TEST(ScenarioSpecTest, RejectsMalformedConfigs) {
  const std::string base = "sectors = 10\n";
  // Unknown top-level key (typo defense).
  EXPECT_FALSE(ScenarioSpec::from_config(
                   Config::parse(base + "sectorz = 9\n").value())
                   .is_ok());
  // Unknown phase kind.
  (void)spec_error(base + "phase.0.kind = meteor_strike\n");
  // Knob the phase kind does not take.
  (void)spec_error(base + "phase.0.kind = churn\n"
                          "phase.0.corrupt_fraction = 0.5\n");
  // Phase indices must start at 0 with no gaps.
  (void)spec_error(base + "phase.1.kind = idle\n");
  // Fractions outside [0, 1].
  (void)spec_error(base + "phase.0.kind = corrupt_burst\n"
                          "phase.0.corrupt_fraction = 1.5\n");
  // Structural invariants.
  (void)spec_error("sectors = 0\n");
  (void)spec_error(base + "file_size_min = 4096\nfile_size_max = 1024\n");
  (void)spec_error(base + "file_size_max = 999999999\n");
  (void)spec_error(base + "file_value = 55\n");  // not a min_value multiple
  (void)spec_error(base + "net.verify_proofs = true\n");
  (void)spec_error(base + "net.proof_due = 1\n");  // Params::validate
  // Type errors inside a known key.
  (void)spec_error("sectors = many\n");
  // Non-finite numbers (NaN passes naive range checks).
  (void)spec_error(base + "phase.0.kind = corrupt_burst\n"
                          "phase.0.corrupt_fraction = nan\n");
  (void)spec_error(base + "net.avg_refresh = inf\n");
  // Out-of-range values for uint32 params must error, not wrap.
  (void)spec_error(base + "net.k = 4294967299\n");
  // engine.workers: negative values fail the unsigned parse, absurd
  // counts fail util::Config's range validation.
  (void)spec_error(base + "engine.workers = -1\n");
  (void)spec_error(base + "engine.workers = 100000\n");
  (void)spec_error(base + "engine.workers = four\n");
}

TEST(ScenarioSpecTest, EngineWorkersParsesAndRoundTrips) {
  const auto config = Config::parse("sectors = 10\nengine.workers = 8\n");
  ASSERT_TRUE(config.is_ok());
  const auto spec = ScenarioSpec::from_config(config.value());
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().engine_workers, 8u);

  // The key survives serialization (the `--set engine.workers=K` ->
  // `--dump-spec` round trip) and reparses to the same spec.
  const std::string text = spec.value().to_config_string();
  EXPECT_NE(text.find("engine.workers = 8\n"), std::string::npos);
  const auto reparsed = ScenarioSpec::from_config(Config::parse(text).value());
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().engine_workers, 8u);
  EXPECT_EQ(reparsed.value().to_config_string(), text);

  // 0 = one worker per hardware thread — a valid request.
  const auto zero = ScenarioSpec::from_config(
      Config::parse("sectors = 10\nengine.workers = 0\n").value());
  ASSERT_TRUE(zero.is_ok());
  EXPECT_EQ(zero.value().engine_workers, 0u);
}

TEST(ScenarioSpecTest, ValidateRejectsWrongKindKnobsOnInCodeSpecs) {
  // Names with comment characters would not survive the key=value
  // round trip (a file config's `#` is simply a comment, so only
  // in-code specs can reach this state).
  ScenarioSpec bad_name = mini_spec();
  bad_name.name = "run#3";
  EXPECT_FALSE(bad_name.validate().is_ok());

  ScenarioSpec spec = mini_spec();
  spec.phases.push_back(PhaseSpec::make_churn(3, 40));
  spec.phases.back().corrupt_fraction = 0.5;  // not a churn knob
  EXPECT_FALSE(spec.validate().is_ok());

  spec.phases.back() = PhaseSpec::make_rent_audit(2);
  spec.phases.back().cycles = 7;  // rent_audit advances periods, not cycles
  EXPECT_FALSE(spec.validate().is_ok());

  spec.phases.back() = PhaseSpec::make_rent_audit(2);
  EXPECT_TRUE(spec.validate().is_ok());
}

TEST(ScenarioSpecTest, LoadsFromFileAndReportsMissingFiles) {
  const std::string path = testing::TempDir() + "/scenario_spec_test.cfg";
  {
    std::ofstream out(path);
    out << mini_spec().to_config_string();
  }
  const auto spec = ScenarioSpec::from_file(path);
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().name, "mini");
  EXPECT_FALSE(ScenarioSpec::from_file(path + ".does-not-exist").is_ok());
}

// ---- ScenarioRunner -------------------------------------------------------

ScenarioSpec churn_spec() {
  ScenarioSpec spec = mini_spec();
  spec.params.avg_refresh = 5.0;  // visible refresh traffic in few cycles
  spec.phases.push_back(PhaseSpec::make_churn(3, 20, 0.05));
  spec.phases.push_back(PhaseSpec::make_corrupt_burst(0.1, 2));
  spec.phases.push_back(PhaseSpec::make_rent_audit(1));
  return spec;
}

TEST(ScenarioRunnerTest, SameSeedProducesByteIdenticalReports) {
  ScenarioRunner first(churn_spec());
  ScenarioRunner second(churn_spec());
  const std::string json1 = first.run().to_json();
  const std::string json2 = second.run().to_json();
  EXPECT_EQ(json1, json2);
  EXPECT_NE(json1.find("\"rent_conserved\": true"), std::string::npos);

  ScenarioSpec reseeded = churn_spec();
  reseeded.seed = 6;
  ScenarioRunner third(std::move(reseeded));
  EXPECT_NE(third.run().to_json(), json1);
}

TEST(ScenarioRunnerTest, TimingsAreOptIn) {
  ScenarioSpec spec = mini_spec();
  spec.initial_files = 10;
  spec.phases.push_back(PhaseSpec::make_idle(1));
  ScenarioRunner runner(std::move(spec));
  const auto report = runner.run();
  EXPECT_EQ(report.to_json(false).find("wall_seconds"), std::string::npos);
  EXPECT_NE(report.to_json(true).find("wall_seconds"), std::string::npos);
  EXPECT_NE(report.to_json(true).find("setup_seconds"), std::string::npos);
}

TEST(ScenarioRunnerTest, ReportMatchesEngineIntrospection) {
  ScenarioRunner runner(churn_spec());
  const auto report = runner.run();
  const Network& net = runner.network();

  // The report must be a faithful projection of the engine's own state.
  EXPECT_EQ(report.totals.files_added, net.stats().files_added);
  EXPECT_EQ(report.totals.files_stored, net.stats().files_stored);
  EXPECT_EQ(report.totals.files_lost, net.stats().files_lost);
  EXPECT_EQ(report.totals.value_compensated, net.stats().value_compensated);
  EXPECT_EQ(report.rent_charged, net.total_rent_charged());
  EXPECT_EQ(report.rent_paid, net.total_rent_paid());
  EXPECT_EQ(report.rent_pool,
            runner.ledger().balance(net.rent_pool_account()));
  EXPECT_EQ(report.final_files, net.file_count());
  EXPECT_EQ(report.final_time, net.now());
  EXPECT_TRUE(report.rent_conserved);
  EXPECT_EQ(report.rent_charged, report.rent_paid + report.rent_pool);

  // Phase deltas telescope to the totals.
  NetworkStats sum;
  for (const auto& phase : report.phases) {
    sum.files_added += phase.delta.files_added;
    sum.files_lost += phase.delta.files_lost;
    sum.refreshes_started += phase.delta.refreshes_started;
  }
  // Setup adds happen before phase 0; phases only add churn arrivals.
  EXPECT_EQ(sum.files_added + report.initial_files,
            report.totals.files_added);
  EXPECT_EQ(sum.files_lost, report.totals.files_lost);
  EXPECT_LE(sum.refreshes_started, report.totals.refreshes_started);
}

/// The runner is "direct Network calls plus bookkeeping": replaying the
/// same request sequence by hand against a fresh engine must produce the
/// same counters. Mirrors the runner's documented determinism contract
/// (engine stream = seed, workload stream = seed ^ kWorkloadSeedSalt).
TEST(ScenarioRunnerTest, MiniChurnMatchesDirectNetworkCalls) {
  ScenarioSpec spec = mini_spec();
  spec.phases.push_back(PhaseSpec::make_churn(2, 15));
  const std::uint64_t arrivals_per_cycle = 15;
  const std::uint64_t churn_cycles = 2;

  ScenarioRunner runner(spec);
  const auto report = runner.run();

  // ---- By hand: same accounts, same draws, same requests ----------------
  fi::ledger::Ledger ledger;
  const fi::AccountId provider = ledger.create_account(1'000'000'000ull);
  const fi::AccountId client = ledger.create_account(1'000'000'000ull);
  Network net(spec.params, ledger, spec.seed);
  net.set_auto_prove(true);
  std::vector<fi::core::ReplicaTransferRequested> queue;
  net.subscribe([&queue](const fi::core::Event& event) {
    if (const auto* req =
            std::get_if<fi::core::ReplicaTransferRequested>(&event)) {
      queue.push_back(*req);
    }
  });
  const auto drain = [&] {
    std::vector<fi::core::ReplicaTransferRequested> batch;
    batch.swap(queue);
    for (const auto& req : batch) {
      (void)net.file_confirm(net.sectors().at(req.to).owner, req.file,
                             req.index, req.to, {}, std::nullopt);
    }
  };
  const auto advance_confirming = [&](fi::Time horizon) {
    drain();
    while (true) {
      const fi::Time next = net.next_task_time();
      if (next == fi::kNoTime || next > horizon) break;
      net.advance_to(next);
      drain();
    }
    net.advance_to(horizon);
    drain();
  };

  fi::util::Xoshiro256 workload(spec.seed ^ fi::scenario::kWorkloadSeedSalt);
  const auto add_one = [&] {
    const fi::ByteCount span = spec.file_size_max - spec.file_size_min + 1;
    const fi::ByteCount size =
        spec.file_size_min + workload.uniform_below(span);
    ASSERT_TRUE(net.file_add(client, {size, spec.file_value, {}}).is_ok());
  };

  const fi::ByteCount capacity =
      spec.sector_units * spec.params.min_capacity;
  for (std::uint64_t s = 0; s < spec.sectors; ++s) {
    ASSERT_TRUE(net.sector_register(provider, capacity).is_ok());
  }
  for (std::uint64_t f = 0; f < spec.initial_files; ++f) add_one();
  advance_confirming(net.now() +
                     spec.params.transfer_window(spec.file_size_max) + 1);
  for (std::uint64_t c = 0; c < churn_cycles; ++c) {
    for (std::uint64_t a = 0; a < arrivals_per_cycle; ++a) add_one();
    advance_confirming(net.now() + spec.params.proof_cycle);
  }

  EXPECT_EQ(report.totals.files_added, net.stats().files_added);
  EXPECT_EQ(report.totals.files_stored, net.stats().files_stored);
  EXPECT_EQ(report.totals.upload_failures, net.stats().upload_failures);
  EXPECT_EQ(report.totals.refreshes_started, net.stats().refreshes_started);
  EXPECT_EQ(report.totals.refreshes_completed,
            net.stats().refreshes_completed);
  EXPECT_EQ(report.totals.punishments, net.stats().punishments);
  EXPECT_EQ(report.rent_charged, net.total_rent_charged());
  EXPECT_EQ(report.final_files, net.file_count());
  EXPECT_EQ(report.final_time, net.now());
}

TEST(ScenarioRunnerTest, ExtraLookupHelper) {
  fi::scenario::PhaseMetrics phase;
  phase.extras.emplace_back("alpha", 0.5);
  EXPECT_DOUBLE_EQ(fi::scenario::extra_or(phase, "alpha"), 0.5);
  EXPECT_DOUBLE_EQ(fi::scenario::extra_or(phase, "beta", -1.0), -1.0);
}

}  // namespace
