// util::TaskPool: shard coverage, chunked parallel_for ranges, degenerate
// inputs (empty range, more shards than items), deterministic exception
// propagation, and pool reuse after a failed job.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/task_pool.h"

namespace {

using fi::util::TaskPool;

TEST(TaskPoolTest, RunsEveryShardExactlyOnce) {
  TaskPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr std::size_t kShards = 64;
  std::vector<std::atomic<int>> hits(kShards);
  pool.run_shards(kShards, [&](std::size_t shard) { ++hits[shard]; });
  for (std::size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(TaskPoolTest, SingleWorkerRunsInline) {
  // TaskPool(1) spawns no threads: every shard runs on the calling thread,
  // so the degenerate pool is exactly the serial loop.
  TaskPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.run_shards(8, [&](std::size_t shard) {
    seen[shard] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(TaskPoolTest, ParallelForCoversRangeWithContiguousChunks) {
  TaskPool pool(3);
  constexpr std::size_t kItems = 100;
  std::vector<std::atomic<int>> hits(kItems);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(kItems, [&](std::size_t begin, std::size_t end,
                                std::size_t shard) {
    EXPECT_LT(shard, pool.worker_count());
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
    const std::lock_guard<std::mutex> lock(mutex);
    ranges.emplace_back(begin, end);
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
  // Chunks partition [0, n): sorted by begin, each picks up where the
  // previous ended.
  std::set<std::pair<std::size_t, std::size_t>> sorted(ranges.begin(),
                                                       ranges.end());
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : sorted) {
    EXPECT_EQ(begin, expect_begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kItems);
}

TEST(TaskPoolTest, EmptyRangeNeverInvokesTheCallback) {
  TaskPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  pool.run_shards(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPoolTest, MoreShardsThanItems) {
  // 8 workers over 3 items: the surplus shards get empty ranges and the
  // callback never sees them.
  TaskPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> invocations{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    ++invocations;
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_LE(invocations.load(), 3);
  EXPECT_GE(invocations.load(), 1);
}

TEST(TaskPoolTest, PropagatesTheLowestShardsException) {
  TaskPool pool(4);
  // Two shards throw; the caller must deterministically see the
  // lowest-indexed one's exception regardless of claim order, and every
  // non-throwing shard must still have run.
  std::vector<std::atomic<int>> hits(32);
  try {
    pool.run_shards(32, [&](std::size_t shard) {
      if (shard == 5) throw std::runtime_error("shard five");
      if (shard == 20) throw std::runtime_error("shard twenty");
      ++hits[shard];
    });
    FAIL() << "expected run_shards to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard five");
  }
  for (std::size_t i = 0; i < 32; ++i) {
    if (i == 5 || i == 20) continue;
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(TaskPoolTest, ReusableAfterAnException) {
  TaskPool pool(4);
  EXPECT_THROW(pool.run_shards(
                   8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.run_shards(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(TaskPoolTest, ResolveWorkers) {
  EXPECT_GE(TaskPool::resolve_workers(0), 1u);  // hardware concurrency
  EXPECT_EQ(TaskPool::resolve_workers(1), 1u);
  EXPECT_EQ(TaskPool::resolve_workers(7), 7u);
  EXPECT_EQ(TaskPool::resolve_workers(1'000'000),
            static_cast<unsigned>(TaskPool::kMaxWorkers));
}

}  // namespace
