#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/checked.h"
#include "util/distributions.h"
#include "util/fenwick.h"
#include "util/hex.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/status.h"

namespace fi::util {
namespace {

// ---------------------------------------------------------------------------
// PRNG
// ---------------------------------------------------------------------------

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Prng, UniformBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_below(bound), bound);
  }
}

TEST(Prng, UniformBelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100'000;
  std::vector<std::uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.uniform_below(kBuckets)];
  const std::vector<double> expected(kBuckets, kSamples / double(kBuckets));
  // chi^2 with 9 dof: 99.99th percentile ~ 33.7.
  EXPECT_LT(chi_squared_statistic(counts, expected), 33.7);
}

TEST(Prng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.uniform_double_open_zero();
    EXPECT_GT(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST(Prng, JumpCreatesIndependentStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

TEST(Distributions, ExponentialMeanMatches) {
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) {
    stats.add(sample_exponential(rng, 3.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Distributions, NormalMomentsMatch) {
  Xoshiro256 rng(12);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) {
    stats.add(sample_normal(rng, 5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Distributions, PositiveNormalIsPositive) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(sample_positive_normal(rng, 1.0, 1.0), 0.0);
  }
}

TEST(Distributions, PoissonSmallMean) {
  Xoshiro256 rng(14);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.add(static_cast<double>(sample_poisson(rng, 4.5)));
  }
  EXPECT_NEAR(stats.mean(), 4.5, 0.1);
  EXPECT_NEAR(stats.variance(), 4.5, 0.2);
}

TEST(Distributions, PoissonLargeMeanUsesPTRS) {
  Xoshiro256 rng(15);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) {
    stats.add(static_cast<double>(sample_poisson(rng, 200.0)));
  }
  EXPECT_NEAR(stats.mean(), 200.0, 1.0);
  EXPECT_NEAR(stats.variance(), 200.0, 10.0);
}

TEST(Distributions, PoissonZeroMean) {
  Xoshiro256 rng(16);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
}

TEST(Distributions, ZipfRanksDecreaseInFrequency) {
  Xoshiro256 rng(17);
  std::vector<std::uint64_t> counts(11, 0);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t k = sample_zipf(rng, 10, 1.2);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    ++counts[k];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
}

TEST(Distributions, TableThreeSizeDistributionsHaveExpectedMeans) {
  Xoshiro256 rng(18);
  const struct {
    SizeDistribution dist;
    double mean;
    double tol;
  } cases[] = {
      {SizeDistribution::uniform01, 0.5, 0.01},
      {SizeDistribution::uniform12, 1.5, 0.01},
      {SizeDistribution::exponential, 1.0, 0.02},
      // Truncation to positives shifts the normal means slightly upward.
      {SizeDistribution::normal_mu_var, 1.29, 0.05},
      {SizeDistribution::normal_mu_2var, 1.06, 0.05},
  };
  for (const auto& c : cases) {
    RunningStats stats;
    for (int i = 0; i < 100'000; ++i) stats.add(sample_size(rng, c.dist));
    EXPECT_NEAR(stats.mean(), c.mean, c.tol)
        << size_distribution_name(c.dist);
    EXPECT_GT(stats.min(), 0.0) << size_distribution_name(c.dist);
  }
}

// ---------------------------------------------------------------------------
// Fenwick tree
// ---------------------------------------------------------------------------

TEST(Fenwick, PrefixSumsMatchNaive) {
  Xoshiro256 rng(21);
  FenwickTree tree(100);
  std::vector<std::uint64_t> weights(100, 0);
  for (int round = 0; round < 500; ++round) {
    const std::size_t i = rng.uniform_below(100);
    const std::uint64_t w = rng.uniform_below(1000);
    tree.set(i, w);
    weights[i] = w;
    std::uint64_t naive = 0;
    const std::size_t upto = rng.uniform_below(101);
    for (std::size_t j = 0; j < upto; ++j) naive += weights[j];
    ASSERT_EQ(tree.prefix_sum(upto), naive);
  }
}

TEST(Fenwick, PushBackExtendsTree) {
  FenwickTree tree;
  std::uint64_t total = 0;
  for (std::uint64_t i = 1; i <= 300; ++i) {
    tree.push_back(i);
    total += i;
    ASSERT_EQ(tree.total(), total);
    ASSERT_EQ(tree.prefix_sum(tree.size()), total);
  }
  // Spot-check interior prefix sums: sum of 1..k.
  for (std::size_t k : {1u, 7u, 64u, 65u, 255u, 300u}) {
    EXPECT_EQ(tree.prefix_sum(k), k * (k + 1) / 2);
  }
}

TEST(Fenwick, FindByPrefixReturnsCorrectSlot) {
  FenwickTree tree(5);
  tree.set(0, 10);
  tree.set(1, 0);
  tree.set(2, 5);
  tree.set(3, 0);
  tree.set(4, 1);
  EXPECT_EQ(tree.find_by_prefix(0), 0u);
  EXPECT_EQ(tree.find_by_prefix(9), 0u);
  EXPECT_EQ(tree.find_by_prefix(10), 2u);
  EXPECT_EQ(tree.find_by_prefix(14), 2u);
  EXPECT_EQ(tree.find_by_prefix(15), 4u);
}

TEST(Fenwick, SamplingProportionalToWeights) {
  Xoshiro256 rng(22);
  FenwickTree tree(4);
  tree.set(0, 1);
  tree.set(1, 2);
  tree.set(2, 3);
  tree.set(3, 4);
  std::vector<std::uint64_t> counts(4, 0);
  constexpr int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) ++counts[tree.sample(rng)];
  std::vector<double> expected;
  for (double w : {1.0, 2.0, 3.0, 4.0}) expected.push_back(kSamples * w / 10.0);
  EXPECT_LT(chi_squared_statistic(counts, expected), 21.1);  // 3 dof, 99.99%
}

TEST(Fenwick, ZeroWeightSlotsNeverSampled) {
  Xoshiro256 rng(23);
  FenwickTree tree(10);
  tree.set(3, 100);
  tree.set(7, 100);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t s = tree.sample(rng);
    EXPECT_TRUE(s == 3 || s == 7);
  }
}

TEST(Fenwick, SampleFromEmptyThrows) {
  Xoshiro256 rng(24);
  FenwickTree tree(3);
  EXPECT_THROW((void)tree.sample(rng), InvariantViolation);
}

// ---------------------------------------------------------------------------
// Checked arithmetic
// ---------------------------------------------------------------------------

TEST(Checked, AddOverflowThrows) {
  EXPECT_EQ(checked_add(2, 3), 5u);
  EXPECT_THROW(checked_add(~0ull, 1), std::overflow_error);
}

TEST(Checked, SubUnderflowThrows) {
  EXPECT_EQ(checked_sub(5, 3), 2u);
  EXPECT_THROW(checked_sub(3, 5), std::overflow_error);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_EQ(checked_mul(1ull << 30, 4), 1ull << 32);
  EXPECT_THROW(checked_mul(1ull << 63, 2), std::overflow_error);
}

TEST(Checked, MulDivUsesWideIntermediate) {
  // a*b overflows 64 bits but the quotient fits.
  EXPECT_EQ(checked_mul_div(1ull << 62, 6, 3), (1ull << 62) * 2);
  EXPECT_THROW(checked_mul_div(1, 1, 0), std::overflow_error);
  EXPECT_THROW(checked_mul_div(~0ull, 3, 1), std::overflow_error);
}

TEST(Checked, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_THROW(ceil_div(1, 0), std::overflow_error);
}

// ---------------------------------------------------------------------------
// Hex
// ---------------------------------------------------------------------------

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> bytes{0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(bytes), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), bytes);
  EXPECT_EQ(from_hex("0001ABFF7E"), bytes);
}

TEST(Hex, RejectsMalformedInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, RunningStatsMatchKnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(0.0, 1.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i / 1000.0);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0.0, 1.0, 10);
  h.add(-5.0);
  h.add(27.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = err(ErrorCode::insufficient_space, "sector full");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::insufficient_space);
  EXPECT_EQ(s.to_string(), "INSUFFICIENT_SPACE: sector full");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, ErrorAccessThrowsOnValue) {
  Result<int> r(err(ErrorCode::not_found, "nope"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::not_found);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, OkStatusWithoutValueRejected) {
  EXPECT_THROW(Result<int>(Status::ok()), std::logic_error);
}

TEST(Check, MacroThrowsWithLocation) {
  try {
    FI_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "expected throw";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke: 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace fi::util
