// Layout-equivalence property tests for the SoA/arena hot-state tables.
//
// The PR 7 memory-layout refactor replaced node-based containers with
// struct-of-arrays storage plus swap-erase reverse indexes:
//
//   * core::PendingList:  ordered multimap  -> flat binary heap
//   * core::SectorTable:  record vector     -> per-field SoA + Fenwick
//   * core::AllocTable:   nested hash maps  -> slab + dense bucket vectors
//
// Everything observable about the old containers must survive: query
// results, iteration order (bucket order IS serialized), sampler draws,
// and the canonical save encoding. Each suite below drives the production
// table and an in-test reference oracle — written in the old container
// idiom — through the same randomized op sequence (3 seeds x 10^4 ops)
// and requires them to agree after every step, including across a
// save -> load -> save round trip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/alloc_table.h"
#include "core/network.h"
#include "core/pending_list.h"
#include "core/sector.h"
#include "ledger/account.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/prng.h"

namespace fi {
namespace {

using core::AllocState;
using core::AllocTable;
using core::EntryKey;
using core::FileId;
using core::PendingList;
using core::ReplicaIndex;
using core::SectorId;
using core::SectorState;
using core::SectorTable;
using core::Task;
using core::TaskKind;
using util::Xoshiro256;

constexpr std::uint64_t kSeeds[] = {0xA11CE, 0xB0B, 0xC4A05};
constexpr std::size_t kOpsPerSeed = 10'000;

template <typename T>
std::vector<std::uint8_t> save_bytes(const T& table) {
  util::BinaryWriter writer;
  table.save(writer);
  return writer.data();
}

// ---------------------------------------------------------------------------
// PendingList vs the historical insertion-ordered multimap
// ---------------------------------------------------------------------------

/// Reference oracle in the old idiom: a multimap keyed by time. Equal keys
/// keep insertion order (guaranteed since C++11), which is exactly the
/// (time, sequence) total order the heap must reproduce.
struct PendingOracle {
  std::multimap<Time, Task> items;

  void schedule(Time at, Task task) { items.emplace(at, task); }

  std::vector<std::pair<Time, Task>> pop_due(Time t) {
    std::vector<std::pair<Time, Task>> due;
    while (!items.empty() && items.begin()->first <= t) {
      due.emplace_back(items.begin()->first, items.begin()->second);
      items.erase(items.begin());
    }
    return due;
  }

  [[nodiscard]] Time next_time() const {
    return items.empty() ? kNoTime : items.begin()->first;
  }

  [[nodiscard]] std::vector<std::uint8_t> save_encoding() const {
    util::BinaryWriter writer;
    writer.u64(items.size());
    for (const auto& [at, task] : items) {
      writer.u64(at);
      writer.u8(static_cast<std::uint8_t>(task.kind));
      writer.u64(task.file);
      writer.u32(task.index);
    }
    return writer.data();
  }
};

void expect_task_eq(const Task& a, const Task& b, std::size_t step) {
  EXPECT_EQ(a.kind, b.kind) << "step " << step;
  EXPECT_EQ(a.file, b.file) << "step " << step;
  EXPECT_EQ(a.index, b.index) << "step " << step;
}

TEST(LayoutEquivalence, PendingListMatchesMultimapOracle) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Xoshiro256 rng(seed);
    PendingList pending;
    PendingOracle oracle;
    Time now = 0;

    for (std::size_t step = 0; step < kOpsPerSeed; ++step) {
      const std::uint64_t op = rng.uniform_below(10);
      if (op < 7) {
        Task task;
        task.kind = static_cast<TaskKind>(rng.uniform_below(4));
        task.file =
            rng.uniform_below(5) == 0 ? core::kNoFile : rng.uniform_below(100);
        task.index = static_cast<ReplicaIndex>(rng.uniform_below(8));
        // Equal timestamps are common on purpose: the tie-break order is
        // the property under test.
        const Time at = now + rng.uniform_below(64);
        pending.schedule(at, task);
        oracle.schedule(at, task);
      } else {
        now += rng.uniform_below(48);
        const auto got = pending.pop_due(now);
        const auto want = oracle.pop_due(now);
        ASSERT_EQ(got.size(), want.size()) << "step " << step;
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].first, want[i].first) << "step " << step;
          expect_task_eq(got[i].second, want[i].second, step);
        }
      }
      ASSERT_EQ(pending.size(), oracle.items.size()) << "step " << step;
      ASSERT_EQ(pending.empty(), oracle.items.empty()) << "step " << step;
      ASSERT_EQ(pending.next_time(), oracle.next_time()) << "step " << step;

      if (step % 512 == 511) {
        // The canonical encoding is the multimap's iteration order.
        const auto encoded = save_bytes(pending);
        ASSERT_EQ(encoded, oracle.save_encoding()) << "step " << step;

        // Round trip, then CONTINUE on the loaded instance: load renumbers
        // the tie-break sequence densely, and the rest of the op sequence
        // proves that renumbering is unobservable.
        PendingList loaded;
        util::BinaryReader reader(encoded);
        loaded.load(reader);
        ASSERT_TRUE(reader.ok() && reader.exhausted()) << "step " << step;
        ASSERT_EQ(save_bytes(loaded), encoded) << "step " << step;
        pending = std::move(loaded);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SectorTable vs a record-vector oracle with linear-scan sampling
// ---------------------------------------------------------------------------

/// Reference oracle in the old idiom: one vector of full Sector records,
/// totals recomputed by scanning, and capacity-weighted sampling done by a
/// linear cumulative-weight walk. The Fenwick `find_by_prefix` returns the
/// smallest index whose cumulative weight exceeds the target, so both
/// sides consume one `uniform_below(total)` draw and must pick the same
/// sector.
struct SectorOracle {
  explicit SectorOracle(const core::Params& p) : params(p) {}

  const core::Params& params;
  std::vector<core::Sector> recs;

  [[nodiscard]] std::uint64_t weight(std::size_t i) const {
    return recs[i].state == SectorState::normal
               ? recs[i].capacity / params.min_capacity
               : 0;
  }
  [[nodiscard]] std::uint64_t total_weight() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) total += weight(i);
    return total;
  }
  [[nodiscard]] SectorId sample(Xoshiro256& rng) const {
    std::uint64_t target = rng.uniform_below(total_weight());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const std::uint64_t w = weight(i);
      if (target < w) return i;
      target -= w;
    }
    FI_CHECK_MSG(false, "sample walked past total weight");
    return core::kNoSector;
  }

  [[nodiscard]] ByteCount total_capacity(SectorState state) const {
    ByteCount total = 0;
    for (const core::Sector& s : recs) {
      if (s.state == state) total += s.capacity;
    }
    return total;
  }
  [[nodiscard]] std::uint64_t rentable_units() const {
    std::uint64_t units = 0;
    for (const core::Sector& s : recs) {
      if (s.state == SectorState::normal || s.state == SectorState::disabled) {
        units += s.capacity / params.min_capacity;
      }
    }
    return units;
  }

  [[nodiscard]] std::vector<std::uint8_t> save_encoding() const {
    util::BinaryWriter writer;
    writer.u64(recs.size());
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const core::Sector& s = recs[i];
      writer.u64(i);
      writer.u64(s.owner);
      writer.u64(s.capacity);
      writer.u64(s.free_cap);
      writer.u8(static_cast<std::uint8_t>(s.state));
      writer.u64(s.registered_at);
      writer.u32(s.ref_count);
      writer.u128(s.rent_acc_snapshot);
    }
    return writer.data();
  }
};

void expect_sector_eq(const core::Sector& got, const core::Sector& want,
                      std::size_t step) {
  EXPECT_EQ(got.id, want.id) << "step " << step;
  EXPECT_EQ(got.owner, want.owner) << "step " << step;
  EXPECT_EQ(got.capacity, want.capacity) << "step " << step;
  EXPECT_EQ(got.free_cap, want.free_cap) << "step " << step;
  EXPECT_EQ(got.state, want.state) << "step " << step;
  EXPECT_EQ(got.registered_at, want.registered_at) << "step " << step;
  EXPECT_EQ(got.ref_count, want.ref_count) << "step " << step;
  EXPECT_EQ(static_cast<std::uint64_t>(got.rent_acc_snapshot),
            static_cast<std::uint64_t>(want.rent_acc_snapshot))
      << "step " << step;
}

TEST(LayoutEquivalence, SectorTableMatchesRecordVectorOracle) {
  core::Params params;
  params.min_capacity = 1024;

  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Xoshiro256 rng(seed);
    // Twin draw streams: the production Fenwick sampler and the oracle's
    // linear walk each consume exactly one uniform_below per draw, so
    // identically seeded generators must stay in lockstep.
    Xoshiro256 draw_a(seed ^ 0x5EC7), draw_b(seed ^ 0x5EC7);

    SectorTable table(params);
    SectorOracle oracle(params);
    Time now = 0;

    for (std::size_t step = 0; step < kOpsPerSeed; ++step) {
      const std::uint64_t op = rng.uniform_below(12);
      const std::size_t count = oracle.recs.size();
      const SectorId id = count == 0 ? 0 : rng.uniform_below(count);
      switch (op) {
        case 0:
        case 1: {
          const core::ProviderId owner = rng.uniform_below(16);
          // Occasionally invalid (not a min_capacity multiple) to pin the
          // rejection path too.
          const ByteCount capacity =
              rng.uniform_below(10) == 0
                  ? params.min_capacity + 1
                  : (1 + rng.uniform_below(8)) * params.min_capacity;
          const auto got = table.register_sector(owner, capacity, now);
          if (capacity % params.min_capacity == 0) {
            ASSERT_TRUE(got.is_ok()) << "step " << step;
            ASSERT_EQ(got.value(), oracle.recs.size()) << "step " << step;
            core::Sector s;
            s.id = got.value();
            s.owner = owner;
            s.capacity = capacity;
            s.free_cap = capacity;
            s.state = SectorState::normal;
            s.registered_at = now;
            oracle.recs.push_back(s);
          } else {
            ASSERT_FALSE(got.is_ok()) << "step " << step;
          }
          break;
        }
        case 2:
        case 3: {
          if (count == 0) break;
          core::Sector& rec = oracle.recs[id];
          const ByteCount size =
              rng.uniform_below(rec.capacity + params.min_capacity);
          const bool want_ok =
              rec.state == SectorState::normal && rec.free_cap >= size;
          ASSERT_EQ(table.reserve(id, size).is_ok(), want_ok)
              << "step " << step;
          if (want_ok) rec.free_cap -= size;
          break;
        }
        case 4: {
          if (count == 0) break;
          core::Sector& rec = oracle.recs[id];
          // Dead sectors ignore releases; live ones must never exceed
          // capacity, so the oracle bounds the size like real callers do.
          const ByteCount reserved = rec.capacity - rec.free_cap;
          const ByteCount size =
              reserved == 0 ? 0 : rng.uniform_below(reserved + 1);
          table.release(id, size);
          if (rec.state != SectorState::corrupted &&
              rec.state != SectorState::removed) {
            rec.free_cap += size;
          }
          break;
        }
        case 5: {
          if (count == 0) break;
          table.add_ref(id);
          ++oracle.recs[id].ref_count;
          break;
        }
        case 6: {
          if (count == 0 || oracle.recs[id].ref_count == 0) break;
          table.drop_ref(id);
          --oracle.recs[id].ref_count;
          break;
        }
        case 7: {
          if (count == 0) break;
          core::Sector& rec = oracle.recs[id];
          const bool want_ok = rec.state == SectorState::normal;
          ASSERT_EQ(table.disable(id).is_ok(), want_ok) << "step " << step;
          if (want_ok) rec.state = SectorState::disabled;
          break;
        }
        case 8: {
          if (count == 0) break;
          core::Sector& rec = oracle.recs[id];
          const bool want = rec.state != SectorState::corrupted &&
                            rec.state != SectorState::removed;
          ASSERT_EQ(table.mark_corrupted(id), want) << "step " << step;
          if (want) rec.state = SectorState::corrupted;
          break;
        }
        case 9: {
          if (count == 0) break;
          core::Sector& rec = oracle.recs[id];
          if (rec.state != SectorState::disabled || rec.ref_count != 0) break;
          table.mark_removed(id);
          rec.state = SectorState::removed;
          break;
        }
        case 10: {
          if (count == 0) break;
          const core::RentAcc value =
              (static_cast<core::RentAcc>(rng()) << 64) | rng();
          table.set_rent_acc_snapshot(id, value);
          oracle.recs[id].rent_acc_snapshot = value;
          break;
        }
        default:
          now += rng.uniform_below(32);
          break;
      }

      // Per-step light checks: totals, the touched record, and one
      // capacity-weighted draw through each sampler.
      ASSERT_EQ(table.count(), oracle.recs.size()) << "step " << step;
      for (const SectorState state :
           {SectorState::normal, SectorState::disabled, SectorState::corrupted,
            SectorState::removed}) {
        ASSERT_EQ(table.total_capacity(state), oracle.total_capacity(state))
            << "step " << step;
      }
      ASSERT_EQ(table.rentable_units(), oracle.rentable_units())
          << "step " << step;
      if (!oracle.recs.empty()) {
        expect_sector_eq(table.at(id), oracle.recs[id], step);
      }
      if (oracle.total_weight() > 0) {
        const auto got = table.random_sector(draw_a);
        ASSERT_TRUE(got.is_ok()) << "step " << step;
        ASSERT_EQ(got.value(), oracle.sample(draw_b)) << "step " << step;
      } else {
        // No draw is consumed on failure, so the twin streams stay aligned.
        ASSERT_FALSE(table.random_sector(draw_a).is_ok()) << "step " << step;
      }

      if (step % 1024 == 1023) {
        for (std::size_t i = 0; i < oracle.recs.size(); ++i) {
          expect_sector_eq(table.at(i), oracle.recs[i], step);
        }
        const auto encoded = save_bytes(table);
        ASSERT_EQ(encoded, oracle.save_encoding()) << "step " << step;

        // load() rebuilds the Fenwick weights and totals from the records;
        // the clone must re-encode identically and sample identically.
        SectorTable loaded(params);
        util::BinaryReader reader(encoded);
        loaded.load(reader);
        ASSERT_TRUE(reader.ok() && reader.exhausted()) << "step " << step;
        ASSERT_EQ(save_bytes(loaded), encoded) << "step " << step;
        if (oracle.total_weight() > 0) {
          Xoshiro256 clone_a(seed + step), clone_b(seed + step);
          for (int d = 0; d < 8; ++d) {
            ASSERT_EQ(table.random_sector(clone_a).value(),
                      loaded.random_sector(clone_b).value())
                << "step " << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// AllocTable vs a map-of-vectors oracle with linear-search swap-erase
// ---------------------------------------------------------------------------

constexpr FileId kFileUniverse = 48;
constexpr SectorId kSectorUniverse = 32;

/// Reference oracle in the old idiom: an ordered map of per-file entry
/// vectors plus explicit reverse-index buckets and a normal-entry sampler
/// array. Bucket and sampler order are OBSERVABLE (both are serialized,
/// and the sampler indexes draws by position), so the oracle reproduces
/// the production discipline — append on add, swap-erase on remove — with
/// the position found by linear search, which is unique per bucket.
struct AllocOracle {
  struct Entry {
    SectorId prev = core::kNoSector;
    SectorId next = core::kNoSector;
    Time last = kNoTime;
    AllocState state = AllocState::alloc;
    crypto::Hash256 comm_r{};
  };

  std::map<FileId, std::vector<Entry>> files;
  std::vector<std::vector<EntryKey>> by_prev;
  std::vector<std::vector<EntryKey>> by_next;
  std::vector<EntryKey> normal_entries;

  static void bucket_add(std::vector<std::vector<EntryKey>>& buckets,
                         SectorId sector, EntryKey key) {
    if (sector >= buckets.size()) buckets.resize(sector + 1);
    buckets[sector].push_back(key);
  }
  static void swap_erase(std::vector<EntryKey>& items, EntryKey key) {
    const auto it = std::find(items.begin(), items.end(), key);
    FI_CHECK_MSG(it != items.end(), "oracle bucket missing entry");
    *it = items.back();
    items.pop_back();
  }

  void create_file(FileId file, std::uint32_t cp) {
    files.emplace(file, std::vector<Entry>(cp));
  }
  void remove_file(FileId file) {
    const std::vector<Entry>& entries = files.at(file);
    for (std::size_t idx = 0; idx < entries.size(); ++idx) {
      const EntryKey key{file, static_cast<ReplicaIndex>(idx)};
      if (entries[idx].prev != core::kNoSector) {
        swap_erase(by_prev[entries[idx].prev], key);
      }
      if (entries[idx].next != core::kNoSector) {
        swap_erase(by_next[entries[idx].next], key);
      }
      if (entries[idx].state == AllocState::normal) {
        swap_erase(normal_entries, key);
      }
    }
    files.erase(file);
  }
  void set_link(FileId file, ReplicaIndex idx, SectorId sector, bool is_prev) {
    Entry& e = files.at(file)[idx];
    SectorId& link = is_prev ? e.prev : e.next;
    auto& buckets = is_prev ? by_prev : by_next;
    const EntryKey key{file, idx};
    if (link != core::kNoSector) swap_erase(buckets[link], key);
    link = sector;
    if (sector != core::kNoSector) bucket_add(buckets, sector, key);
  }
  void set_state(FileId file, ReplicaIndex idx, AllocState state) {
    Entry& e = files.at(file)[idx];
    const EntryKey key{file, idx};
    if (e.state == AllocState::normal && state != AllocState::normal) {
      swap_erase(normal_entries, key);
    } else if (e.state != AllocState::normal && state == AllocState::normal) {
      normal_entries.push_back(key);
    }
    e.state = state;
  }

  [[nodiscard]] std::vector<EntryKey> with(
      const std::vector<std::vector<EntryKey>>& buckets,
      SectorId sector) const {
    if (sector >= buckets.size()) return {};
    return buckets[sector];
  }

  [[nodiscard]] std::vector<std::uint8_t> save_encoding() const {
    util::BinaryWriter writer;
    writer.u64(files.size());
    for (const auto& [file, entries] : files) {
      writer.u64(file);
      writer.u32(static_cast<std::uint32_t>(entries.size()));
      for (const Entry& e : entries) {
        writer.u64(e.prev);
        writer.u64(e.next);
        writer.u64(e.last);
        writer.u8(static_cast<std::uint8_t>(e.state));
        writer.raw(e.comm_r.bytes);
      }
    }
    const auto save_index =
        [&writer](const std::vector<std::vector<EntryKey>>& buckets) {
          std::uint64_t non_empty = 0;
          for (const auto& items : buckets) {
            if (!items.empty()) ++non_empty;
          }
          writer.u64(non_empty);
          for (SectorId sector = 0; sector < buckets.size(); ++sector) {
            if (buckets[sector].empty()) continue;
            writer.u64(sector);
            writer.u64(buckets[sector].size());
            for (const EntryKey& key : buckets[sector]) {
              writer.u64(key.first);
              writer.u32(key.second);
            }
          }
        };
    save_index(by_prev);
    save_index(by_next);
    writer.u64(normal_entries.size());
    for (const EntryKey& key : normal_entries) {
      writer.u64(key.first);
      writer.u32(key.second);
    }
    return writer.data();
  }
};

TEST(LayoutEquivalence, AllocTableMatchesMapOracle) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Xoshiro256 rng(seed);
    Xoshiro256 draw_a(seed ^ 0xA110C), draw_b(seed ^ 0xA110C);

    AllocTable table;
    AllocOracle oracle;

    // Picks an existing file; map iteration order is deterministic, so
    // both sides see the same choice.
    const auto pick_file = [&oracle](Xoshiro256& r) {
      auto it = oracle.files.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           r.uniform_below(oracle.files.size())));
      return it->first;
    };
    const auto pick_replica = [&oracle](FileId file, Xoshiro256& r) {
      return static_cast<ReplicaIndex>(
          r.uniform_below(oracle.files.at(file).size()));
    };

    for (std::size_t step = 0; step < kOpsPerSeed; ++step) {
      const std::uint64_t op = rng.uniform_below(16);
      if (op < 3) {
        // Create/remove churn through a small id universe exercises the
        // slab pool's block reuse under the same observable order.
        const FileId file = rng.uniform_below(kFileUniverse);
        if (!oracle.files.contains(file)) {
          const auto cp = static_cast<std::uint32_t>(1 + rng.uniform_below(4));
          table.create_file(file, cp);
          oracle.create_file(file, cp);
        } else {
          table.remove_file(file);
          oracle.remove_file(file);
        }
      } else if (!oracle.files.empty()) {
        const FileId file = pick_file(rng);
        const ReplicaIndex idx = pick_replica(file, rng);
        switch (op % 5) {
          case 0:
          case 1: {
            const bool is_prev = op % 2 == 0;
            const SectorId sector = rng.uniform_below(4) == 0
                                        ? core::kNoSector
                                        : rng.uniform_below(kSectorUniverse);
            if (is_prev) {
              table.set_prev(file, idx, sector);
            } else {
              table.set_next(file, idx, sector);
            }
            oracle.set_link(file, idx, sector, is_prev);
            break;
          }
          case 2: {
            const auto state = static_cast<AllocState>(rng.uniform_below(4));
            table.set_state(file, idx, state);
            oracle.set_state(file, idx, state);
            break;
          }
          case 3: {
            const Time last = rng.uniform_below(1 << 20);
            table.set_last(file, idx, last);
            oracle.files.at(file)[idx].last = last;
            break;
          }
          default: {
            crypto::Hash256 comm_r;
            for (std::uint8_t& b : comm_r.bytes) {
              b = static_cast<std::uint8_t>(rng.uniform_below(256));
            }
            table.set_comm_r(file, idx, comm_r);
            oracle.files.at(file)[idx].comm_r = comm_r;
            break;
          }
        }
        // Light check: the touched file's entries, field for field.
        const auto& entries = oracle.files.at(file);
        ASSERT_EQ(table.replica_count(file), entries.size())
            << "step " << step;
        for (ReplicaIndex i = 0; i < entries.size(); ++i) {
          const core::AllocEntry got = table.entry(file, i);
          ASSERT_EQ(got.prev, entries[i].prev) << "step " << step;
          ASSERT_EQ(got.next, entries[i].next) << "step " << step;
          ASSERT_EQ(got.last, entries[i].last) << "step " << step;
          ASSERT_EQ(got.state, entries[i].state) << "step " << step;
          ASSERT_EQ(got.comm_r, entries[i].comm_r) << "step " << step;
        }
      }

      ASSERT_EQ(table.file_count(), oracle.files.size()) << "step " << step;
      ASSERT_EQ(table.normal_entry_count(), oracle.normal_entries.size())
          << "step " << step;

      // Sampler draw: `uniform_below(size)` indexes the dense array, so
      // the draw pins the sampler's exact element order, not just its
      // membership.
      if (!oracle.normal_entries.empty()) {
        const auto got = table.random_normal_entry(draw_a);
        ASSERT_TRUE(got.has_value()) << "step " << step;
        ASSERT_EQ(*got,
                  oracle.normal_entries[draw_b.uniform_below(
                      oracle.normal_entries.size())])
            << "step " << step;
      } else {
        ASSERT_FALSE(table.random_normal_entry(draw_a).has_value())
            << "step " << step;
      }

      if (step % 512 == 511) {
        for (FileId file = 0; file < kFileUniverse; ++file) {
          ASSERT_EQ(table.has_file(file), oracle.files.contains(file))
              << "step " << step;
        }
        // Reverse-index iteration order, bucket by bucket.
        for (SectorId sector = 0; sector < kSectorUniverse; ++sector) {
          ASSERT_EQ(table.entries_with_prev(sector),
                    oracle.with(oracle.by_prev, sector))
              << "step " << step << " sector " << sector;
          ASSERT_EQ(table.entries_with_next(sector),
                    oracle.with(oracle.by_next, sector))
              << "step " << step << " sector " << sector;
          ASSERT_EQ(table.count_with_prev(sector),
                    oracle.with(oracle.by_prev, sector).size())
              << "step " << step;
          ASSERT_EQ(table.count_with_next(sector),
                    oracle.with(oracle.by_next, sector).size())
              << "step " << step;
        }

        const auto encoded = save_bytes(table);
        ASSERT_EQ(encoded, oracle.save_encoding()) << "step " << step;

        // The loaded clone repacks the slab dense in file-id order — a
        // different physical layout that must re-encode and sample
        // identically.
        AllocTable loaded;
        util::BinaryReader reader(encoded);
        loaded.load(reader, kSectorUniverse);
        ASSERT_TRUE(reader.ok() && reader.exhausted()) << "step " << step;
        ASSERT_EQ(save_bytes(loaded), encoded) << "step " << step;
        if (!oracle.normal_entries.empty()) {
          Xoshiro256 clone_a(seed + step), clone_b(seed + step);
          for (int d = 0; d < 8; ++d) {
            ASSERT_EQ(table.random_normal_entry(clone_a),
                      loaded.random_normal_entry(clone_b))
                << "step " << step;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Network level: the composed tables under real protocol traffic
// ---------------------------------------------------------------------------

/// Randomized protocol ops on a live engine, then the end-to-end layout
/// property: the canonical encoding round-trips byte-identically and the
/// restored engine's samplers draw in lockstep with the original — the
/// table-level guarantees composed through Network's own call sites.
TEST(NetworkLayoutEquivalence, RandomizedOpsRoundTripByteIdentical) {
  core::Params params;
  params.min_capacity = 1024;
  params.min_value = 10;
  params.k = 2;
  params.cap_para = 10.0;
  params.gamma_deposit = 0.5;
  params.proof_cycle = 100;
  params.proof_due = 150;
  params.proof_deadline = 300;
  params.avg_refresh = 1000.0;
  params.verify_proofs = false;
  params.cr_size = 256;

  ledger::Ledger ledger;
  constexpr std::uint64_t kEngineSeed = 11;
  core::Network net(params, ledger, kEngineSeed);
  const core::ClientId client = ledger.create_account(10'000'000);
  std::vector<core::ProviderId> providers;
  for (int i = 0; i < 4; ++i) providers.push_back(ledger.create_account(1'000'000));

  const auto confirm_all = [&net](FileId file) {
    for (ReplicaIndex i = 0; i < net.allocations().replica_count(file); ++i) {
      const core::AllocEntry e = net.allocations().entry(file, i);
      if (e.state != AllocState::alloc || e.next == core::kNoSector) continue;
      const core::ProviderId owner = net.sectors().at(e.next).owner;
      ASSERT_TRUE(
          net.file_confirm(owner, file, i, e.next, {}, std::nullopt).is_ok());
    }
  };

  Xoshiro256 rng(0xFEED);
  std::vector<FileId> known_files;
  std::optional<SectorId> phys_corrupted;
  for (int step = 0; step < 400; ++step) {
    const std::size_t sectors = net.sectors().count();
    switch (rng.uniform_below(10)) {
      case 0:
      case 1:
        (void)net.sector_register(
            providers[rng.uniform_below(providers.size())],
            (4 + rng.uniform_below(4)) * params.min_capacity);
        break;
      case 2:
      case 3: {
        const auto file = net.file_add(client, {1000, 20, {}});
        if (file.is_ok()) known_files.push_back(file.value());
        break;
      }
      case 4:
        if (!known_files.empty()) {
          const FileId file =
              known_files[rng.uniform_below(known_files.size())];
          if (net.file_exists(file)) confirm_all(file);
        }
        break;
      case 5:
        net.advance(1 + rng.uniform_below(2 * params.proof_cycle));
        break;
      case 6:
        if (sectors > 0 && !phys_corrupted) {
          const SectorId id = rng.uniform_below(sectors);
          net.corrupt_sector_physical(id);
          phys_corrupted = id;
        }
        break;
      case 7:
        if (phys_corrupted) {
          net.restore_sector_physical(*phys_corrupted);
          phys_corrupted.reset();
        }
        break;
      case 8:
        net.settle_all_rent();
        break;
      default:
        if (!known_files.empty()) {
          const FileId file =
              known_files[rng.uniform_below(known_files.size())];
          if (net.file_exists(file)) {
            ASSERT_TRUE(net.file_get(client, file).is_ok());
          }
        }
        break;
    }
  }

  // Deterministic tail: the random mix may have corrupted or discarded its
  // way to an empty sampler, so pin live normal replicas at save time.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        net.sector_register(providers[0], 8 * params.min_capacity).is_ok());
  }
  const auto tail_file = net.file_add(client, {1000, 20, {}});
  ASSERT_TRUE(tail_file.is_ok());
  confirm_all(tail_file.value());
  net.advance(params.transfer_window(1000));
  ASSERT_TRUE(net.file_exists(tail_file.value()));

  // Non-vacuity: the op mix above must leave real state behind, or the
  // round-trip and twin-draw checks below check nothing.
  ASSERT_GT(net.sectors().count(), 0u);
  ASSERT_GT(net.allocations().file_count(), 0u);
  ASSERT_GT(net.allocations().normal_entry_count(), 0u);

  // Canonical encoding of engine + ledger.
  util::BinaryWriter net_writer, ledger_writer;
  net.save(net_writer);
  ledger.save(ledger_writer);

  // Restore into a twin and require byte-identical re-encodings. The twin
  // engine is constructed first (so its system accounts claim the same
  // ledger ids as the original's construction did), then the ledger load
  // replaces every balance, then the engine load restores the state.
  ledger::Ledger ledger2;
  core::Network net2(params, ledger2, kEngineSeed);
  util::BinaryReader ledger_reader(ledger_writer.data());
  ledger2.load(ledger_reader);
  ASSERT_TRUE(ledger_reader.ok());
  util::BinaryReader net_reader(net_writer.data());
  const util::Status loaded = net2.load(net_reader);
  ASSERT_TRUE(loaded.is_ok()) << loaded.to_string();

  util::BinaryWriter net_writer2, ledger_writer2;
  net2.save(net_writer2);
  ledger2.save(ledger_writer2);
  EXPECT_EQ(net_writer.data(), net_writer2.data());
  EXPECT_EQ(ledger_writer.data(), ledger_writer2.data());

  // Twin sampler draws: load rebuilt the Fenwick weights and repacked the
  // allocation slab, but the observable draw sequences must be unchanged.
  Xoshiro256 alloc_a(21), alloc_b(21), sector_a(22), sector_b(22);
  for (int d = 0; d < 16; ++d) {
    EXPECT_EQ(net.allocations().random_normal_entry(alloc_a),
              net2.allocations().random_normal_entry(alloc_b));
    const auto got_a = net.sectors().random_sector(sector_a);
    const auto got_b = net2.sectors().random_sector(sector_b);
    ASSERT_EQ(got_a.is_ok(), got_b.is_ok());
    if (got_a.is_ok()) {
      EXPECT_EQ(got_a.value(), got_b.value());
    }
  }
}

}  // namespace
}  // namespace fi
