// fi_lint fixture: determinism violations — every nondeterminism source
// the checker bans, one per site. Listed in expected_findings.txt.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace util {
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t) {}
  std::uint64_t next() { return 0; }
};
}  // namespace util

namespace fixture {

struct Sector;

class NondeterministicEngine {
 public:
  std::uint64_t bad_rand() {
    return static_cast<std::uint64_t>(std::rand());  // raw-rand
  }

  std::uint64_t bad_mt() {
    std::mt19937_64 gen(7);  // raw-rand: non-canonical engine
    return gen();
  }

  double bad_wall_clock() {
    const auto now = std::chrono::system_clock::now();  // wall-clock
    return std::chrono::duration<double>(now.time_since_epoch()).count();
  }

  std::uint64_t bad_time() {
    return static_cast<std::uint64_t>(time(nullptr));  // wall-clock call
  }

  std::uint64_t bad_literal_seed() {
    util::Xoshiro256 rng(12345);  // local-rng: literal seed
    return rng.next();
  }

  std::uint64_t bad_iteration() const {
    std::uint64_t acc = 0;
    std::uint64_t last = 0;
    for (const auto& [id, weight] : weights_) {  // unordered-iter
      acc += weight;
      last = id;  // order-dependent fold
    }
    return acc ^ last;
  }

  std::uint64_t bad_begin() const {
    std::vector<std::uint64_t> out(members_.begin(),  // unordered-iter
                                   members_.end());
    return out.empty() ? 0 : out.front();
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> weights_;
  std::unordered_set<std::uint64_t> members_;
  std::map<const Sector*, std::uint64_t> by_ptr_;  // pointer-key
};

}  // namespace fixture
