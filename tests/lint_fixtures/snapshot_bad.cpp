// fi_lint fixture: snapshot-hygiene violations — unvalidated wire counts
// sizing allocations, and a writer/reader sequence that diverges.
#include <cstdint>
#include <vector>

namespace util {
class BinaryWriter {
 public:
  void u32(std::uint32_t) {}
  void u64(std::uint64_t) {}
  void str(const char*) {}
};
class BinaryReader {
 public:
  std::uint32_t u32() { return 0; }
  std::uint64_t u64() { return 0; }
  std::uint64_t count(std::uint64_t) { return 0; }
  const char* str() { return ""; }
  std::uint64_t remaining() const { return 0; }
};
}  // namespace util

namespace fixture {

// A raw u64 straight off the wire sizes a reserve: hostile input can
// request a multi-terabyte allocation before any content check runs.
inline std::vector<std::uint64_t> load_rows(util::BinaryReader& reader) {
  std::vector<std::uint64_t> rows;
  const std::uint64_t n = reader.u64();  // unvalidated
  rows.reserve(n);  // unchecked-count
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(reader.u64());
  return rows;
}

// Same hole, inline form.
inline void load_inline(util::BinaryReader& reader,
                        std::vector<std::uint64_t>& out) {
  out.resize(reader.u64());  // unchecked-count (inline)
}

// Mirror-symmetry break: save writes u32 tag then u64 payload, load
// consumes them in the opposite order.
class SwappedOrder {
 public:
  void save(util::BinaryWriter& writer) const {
    writer.u32(tag_);
    writer.u64(payload_);  // rw-mismatch vs load order
  }
  void load(util::BinaryReader& reader) {
    payload_ = reader.u64();  // reads payload where save wrote the tag
    tag_ = reader.u32();
  }

 private:
  std::uint32_t tag_ = 0;
  std::uint64_t payload_ = 0;
};

}  // namespace fixture
