// fi_lint fixture: determinism-clean code — the sanctioned idioms for
// each banned construct. The self-test asserts fi_lint reports nothing.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace util {
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t) {}
  std::uint64_t next() { return 0; }
};
}  // namespace util

namespace fixture {

inline constexpr std::uint64_t kSeedSalt = 0x5345454453414c54ULL;

struct Spec {
  std::uint64_t seed = 0;
};

class DeterministicEngine {
 public:
  explicit DeterministicEngine(const Spec& spec)
      : rng_(spec.seed ^ kSeedSalt) {}  // stream derived from the run seed

  std::uint64_t draw() { return rng_.next(); }

  std::uint64_t canonical_fold() const {
    // Sanctioned idiom: collect keys, sort, then iterate.
    std::vector<std::uint64_t> ids;
    ids.reserve(weights_.size());
    // fi-lint: allow(unordered-iter, keys collected then sorted before use)
    for (const auto& [id, _] : weights_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    std::uint64_t acc = 0;
    for (const std::uint64_t id : ids) acc += weights_.at(id);
    return acc;
  }

 private:
  util::Xoshiro256 rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> weights_;
  std::map<std::uint64_t, std::uint64_t> by_id_;  // keyed by stable id
};

}  // namespace fixture
