// fi_lint fixture: serialization-coverage violations. Every marker below
// is listed in expected_findings.txt; the self-test asserts an exact match.
#include <cstdint>
#include <vector>

namespace util {
class BinaryWriter {
 public:
  void u64(std::uint64_t) {}
  void boolean(bool) {}
};
class BinaryReader {
 public:
  std::uint64_t u64() { return 0; }
  std::uint64_t count(std::uint64_t) { return 0; }
  bool boolean() { return false; }
};
}  // namespace util

namespace fixture {

// A field written but never restored: load drops `dropped_on_load`.
class DropsFieldOnLoad {
 public:
  void save(util::BinaryWriter& writer) const {
    writer.u64(kept_);
    writer.u64(dropped_on_load_);
  }
  void load(util::BinaryReader& reader) {
    kept_ = reader.u64();
    reader.u64();  // value discarded: restore forgotten
  }

 private:
  std::uint64_t kept_ = 0;
  std::uint64_t dropped_on_load_ = 0;  // MARKER missing-in-load
};

// A field never serialized at all and not annotated.
class ForgetsField {
 public:
  void save_state(util::BinaryWriter& writer) const { writer.u64(stored_); }
  void load_state(util::BinaryReader& reader) { stored_ = reader.u64(); }

 private:
  std::uint64_t stored_ = 0;
  bool forgotten_ = false;  // MARKER missing-in-save missing-in-load
};

// An annotation without a reason is itself a finding.
class EmptyReason {
 public:
  void save(util::BinaryWriter& writer) const { writer.u64(a_); }
  void load(util::BinaryReader& reader) { a_ = reader.u64(); }

 private:
  std::uint64_t a_ = 0;
  // fi-lint: not-serialized()
  std::uint64_t unexplained_ = 0;  // exempted, but reason is empty
};

// Element-wise aggregate encoding that skips one field (the PR 5
// compensation_paid drift class).
struct Counters {
  std::uint64_t challenges = 0;
  std::uint64_t proofs = 0;
  std::uint64_t compensation = 0;  // MARKER aggregate-missing
};

class AggregateDrift {
 public:
  void save(util::BinaryWriter& writer) const {
    writer.u64(counters_.challenges);
    writer.u64(counters_.proofs);  // MARKER aggregate-site
    // counters_.compensation never written
  }
  void load(util::BinaryReader& reader) {
    counters_.challenges = reader.u64();
    counters_.proofs = reader.u64();  // MARKER aggregate-site-load
    // counters_.compensation never restored
  }

 private:
  Counters counters_;
};

}  // namespace fixture
