// fi_lint fixture: clean serialization coverage — full round-trips,
// reasoned exemptions, and complete element-wise aggregate encoding.
// The self-test asserts fi_lint reports nothing here.
#include <cstdint>
#include <vector>

namespace util {
class BinaryWriter {
 public:
  void u64(std::uint64_t) {}
  void boolean(bool) {}
};
class BinaryReader {
 public:
  std::uint64_t u64() { return 0; }
  std::uint64_t count(std::uint64_t) { return 0; }
  bool boolean() { return false; }
};
}  // namespace util

namespace fixture {

struct Counters {
  std::uint64_t challenges = 0;
  std::uint64_t proofs = 0;
  std::uint64_t compensation = 0;
};

class FullyCovered {
 public:
  void save(util::BinaryWriter& writer) const {
    writer.u64(stored_);
    writer.boolean(flag_);
    writer.u64(counters_.challenges);
    writer.u64(counters_.proofs);
    writer.u64(counters_.compensation);
  }
  void load(util::BinaryReader& reader) {
    stored_ = reader.u64();
    flag_ = reader.boolean();
    counters_.challenges = reader.u64();
    counters_.proofs = reader.u64();
    counters_.compensation = reader.u64();
    cache_ = stored_ * 2;
  }

 private:
  std::uint64_t stored_ = 0;
  bool flag_ = false;
  Counters counters_;
  // fi-lint: not-serialized(derived: recomputed from stored_ on load)
  std::uint64_t cache_ = 0;
};

}  // namespace fixture
