// fi_lint fixture: snapshot-hygiene-clean code — validated counts and
// mirror-symmetric framing, including a save-side helper that the load
// side spells out directly (sequence-inlined by the checker).
#include <cstdint>
#include <vector>

namespace util {
class BinaryWriter {
 public:
  void u32(std::uint32_t) {}
  void u64(std::uint64_t) {}
};
class BinaryReader {
 public:
  std::uint32_t u32() { return 0; }
  std::uint64_t u64() { return 0; }
  std::uint64_t count(std::uint64_t) { return 0; }
  std::uint64_t remaining() const { return 0; }
  void fail() {}
};

inline void save_u64_seq(BinaryWriter& writer,
                         const std::vector<std::uint64_t>& values) {
  writer.u64(values.size());
  for (const std::uint64_t v : values) writer.u64(v);
}
}  // namespace util

namespace fixture {

// count() validates the element bound internally.
inline std::vector<std::uint64_t> load_rows(util::BinaryReader& reader) {
  std::vector<std::uint64_t> rows;
  const std::uint64_t n = reader.count(8);
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(reader.u64());
  return rows;
}

// A raw read is fine when a bounds check gates the allocation.
inline std::vector<std::uint64_t> load_checked(util::BinaryReader& reader) {
  std::vector<std::uint64_t> rows;
  const std::uint64_t n = reader.u64();
  if (n > reader.remaining() / 8) {
    reader.fail();
    return rows;
  }
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(reader.u64());
  return rows;
}

class MirrorSymmetric {
 public:
  void save(util::BinaryWriter& writer) const {
    writer.u32(tag_);
    util::save_u64_seq(writer, rows_);
  }
  void load(util::BinaryReader& reader) {
    tag_ = reader.u32();
    rows_.clear();
    const std::uint64_t n = reader.count(8);
    rows_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) rows_.push_back(reader.u64());
  }

 private:
  std::uint32_t tag_ = 0;
  std::vector<std::uint64_t> rows_;
};

}  // namespace fixture
