#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/arweave_model.h"
#include "baselines/filecoin_model.h"
#include "baselines/fileinsurer_model.h"
#include "baselines/shard_placement.h"
#include "baselines/sia_model.h"
#include "baselines/storj_model.h"

namespace fi::baselines {
namespace {

std::vector<WorkloadFile> uniform_workload(std::size_t n) {
  return std::vector<WorkloadFile>(n, WorkloadFile{1024, 100});
}

// ---------------------------------------------------------------------------
// ShardPlacement
// ---------------------------------------------------------------------------

TEST(ShardPlacementTest, LostValueThreshold) {
  ShardPlacement placement;
  placement.add_file({{0, 1, 2}, 2, 100});  // needs 2 of 3 survivors
  std::vector<bool> corrupted(4, false);
  EXPECT_EQ(placement.lost_value(corrupted), 0u);
  corrupted[0] = true;
  EXPECT_EQ(placement.lost_value(corrupted), 0u);  // 2 survive
  corrupted[1] = true;
  EXPECT_EQ(placement.lost_value(corrupted), 100u);  // only 1 survives
}

TEST(ShardPlacementTest, DrawDistinctHasNoDuplicates) {
  util::Xoshiro256 rng(1);
  for (int t = 0; t < 100; ++t) {
    auto units = ShardPlacement::draw_distinct(50, 20, rng);
    std::sort(units.begin(), units.end());
    EXPECT_EQ(std::unique(units.begin(), units.end()), units.end());
    EXPECT_EQ(units.size(), 20u);
  }
}

TEST(ShardPlacementTest, CorruptFractionExactBudget) {
  util::Xoshiro256 rng(2);
  const auto corrupted = ShardPlacement::corrupt_fraction(200, 0.35, rng);
  EXPECT_EQ(std::count(corrupted.begin(), corrupted.end(), true), 70);
}

// ---------------------------------------------------------------------------
// Per-protocol behaviour
// ---------------------------------------------------------------------------

TEST(FileInsurerModelTest, FullCompensationAtTheorem4Deposit) {
  FileInsurerModel model;  // k=20, gamma=0.0046
  model.setup(1000, uniform_workload(2000), 1);
  const auto outcome = model.corrupt_random(0.5);
  // Robustness: k=20 makes loss essentially impossible at this scale.
  EXPECT_LT(outcome.lost_value_fraction, 1e-3);
  EXPECT_DOUBLE_EQ(outcome.compensated_fraction, 1.0);
  EXPECT_TRUE(model.prevents_sybil());
  EXPECT_TRUE(model.provable_robustness());
  EXPECT_TRUE(model.full_compensation());
}

TEST(FileInsurerModelTest, LowKLosesButStillCompensates) {
  FileInsurerConfig config;
  config.k = 2;  // deliberately fragile so losses occur
  config.gamma_deposit = 0.5;
  FileInsurerModel model(config);
  model.setup(100, uniform_workload(5000), 2);
  const auto outcome = model.corrupt_random(0.5);
  EXPECT_NEAR(outcome.lost_value_fraction, 0.25, 0.05);  // ~λ^2
  EXPECT_DOUBLE_EQ(outcome.compensated_fraction, 1.0);
}

TEST(FilecoinModelTest, LosesAndBarelyCompensates) {
  FilecoinModel model;  // 3 replicas, 10% collateral
  model.setup(100, uniform_workload(5000), 3);
  const auto outcome = model.corrupt_random(0.5);
  EXPECT_NEAR(outcome.lost_value_fraction, 0.125, 0.04);  // ~λ^3 distinct
  EXPECT_DOUBLE_EQ(outcome.compensated_fraction, 0.1);
  EXPECT_FALSE(model.full_compensation());
  EXPECT_TRUE(model.prevents_sybil());
}

TEST(StorjModelTest, ErasureCodeResistsModerateCorruption) {
  StorjModel model;  // 29-of-80
  model.setup(1000, uniform_workload(2000), 4);
  // Losing a file needs > 51 of 80 shards dead; at λ=0.5 that's a tail
  // event of Binomial(80, 0.5) — rare.
  const auto mild = model.corrupt_random(0.5);
  EXPECT_LT(mild.lost_value_fraction, 0.05);
  // At λ=0.8 nearly everything dies (E[alive] = 16 < 29).
  const auto severe = model.corrupt_random(0.8);
  EXPECT_GT(severe.lost_value_fraction, 0.9);
  EXPECT_DOUBLE_EQ(severe.compensated_fraction, 0.0);
}

TEST(SiaModelTest, SybilCollapseAmplifiesLoss) {
  SiaModel model;
  model.setup(300, uniform_workload(5000), 5);
  // Without Sybil resistance, an attacker claiming 30% of "hosts" with one
  // disk loses ~α^3 of files on a single failure...
  const auto sybil = model.sybil_single_disk_failure(0.3);
  EXPECT_NEAR(sybil.lost_value_fraction, 0.027, 0.012);
  EXPECT_FALSE(model.prevents_sybil());
}

TEST(SybilComparison, PoRepProtocolsUnaffectedBySingleDisk) {
  // The same single-disk Sybil attack against PoRep-based protocols
  // corrupts exactly one unit: losses stay negligible.
  std::vector<std::unique_ptr<DsnProtocol>> protected_protocols;
  protected_protocols.push_back(std::make_unique<FileInsurerModel>());
  protected_protocols.push_back(std::make_unique<FilecoinModel>());
  protected_protocols.push_back(std::make_unique<StorjModel>());
  for (auto& protocol : protected_protocols) {
    protocol->setup(300, uniform_workload(3000), 6);
    const auto outcome = protocol->sybil_single_disk_failure(0.3);
    EXPECT_LT(outcome.lost_value_fraction, 0.01) << protocol->name();
  }
}

TEST(ArweaveModelTest, ReplicationFollowsStorageFraction) {
  ArweaveConfig config;
  config.storage_fraction = 0.05;
  ArweaveModel model(config);
  model.setup(200, uniform_workload(3000), 7);
  // Each file held by ~Binomial(200, 0.05) ≈ 10 miners; λ=0.5 loses
  // ~(0.5)^10 ≈ 0.1% of files.
  const auto outcome = model.corrupt_random(0.5);
  EXPECT_LT(outcome.lost_value_fraction, 0.01);
  EXPECT_DOUBLE_EQ(outcome.compensated_fraction, 0.0);
  // Thin storage incentive makes losses visible.
  ArweaveConfig thin;
  thin.storage_fraction = 0.01;
  ArweaveModel fragile(thin);
  fragile.setup(200, uniform_workload(3000), 8);
  EXPECT_GT(fragile.corrupt_random(0.5).lost_value_fraction,
            outcome.lost_value_fraction);
}

TEST(TableFour, StaticPropertyMatrixMatchesPaper) {
  // Table IV's qualitative rows, re-derived from the models.
  FileInsurerModel fileinsurer;
  FilecoinModel filecoin;
  ArweaveModel arweave;
  StorjModel storj;
  SiaModel sia;
  const DsnProtocol* protocols[] = {&fileinsurer, &filecoin, &arweave, &storj,
                                    &sia};
  for (const DsnProtocol* p : protocols) {
    EXPECT_TRUE(p->capacity_scalable()) << p->name();
  }
  // Preventing Sybil attacks: all but Sia.
  EXPECT_TRUE(fileinsurer.prevents_sybil());
  EXPECT_TRUE(filecoin.prevents_sybil());
  EXPECT_TRUE(arweave.prevents_sybil());
  EXPECT_TRUE(storj.prevents_sybil());
  EXPECT_FALSE(sia.prevents_sybil());
  // Provable robustness and full compensation: FileInsurer only.
  for (const DsnProtocol* p : protocols) {
    if (p->name() == "FileInsurer") {
      EXPECT_TRUE(p->provable_robustness());
      EXPECT_TRUE(p->full_compensation());
    } else {
      EXPECT_FALSE(p->provable_robustness()) << p->name();
      EXPECT_FALSE(p->full_compensation()) << p->name();
    }
  }
}

TEST(TableFour, CompensationOrderingUnderHalfCollapse) {
  // FileInsurer compensates fully; Filecoin partially; the rest nothing.
  FileInsurerConfig fi_config;
  fi_config.k = 2;  // force visible losses so compensation is exercised
  fi_config.gamma_deposit = 0.5;
  FileInsurerModel fileinsurer(fi_config);
  FilecoinModel filecoin;
  StorjModel storj;
  SiaModel sia;
  ArweaveModel arweave;
  DsnProtocol* protocols[] = {&fileinsurer, &filecoin, &storj, &sia, &arweave};
  for (DsnProtocol* p : protocols) p->setup(200, uniform_workload(4000), 9);
  const double fi_comp = fileinsurer.corrupt_random(0.5).compensated_fraction;
  const double fc_comp = filecoin.corrupt_random(0.5).compensated_fraction;
  const double sj_comp = storj.corrupt_random(0.8).compensated_fraction;
  EXPECT_DOUBLE_EQ(fi_comp, 1.0);
  EXPECT_GT(fi_comp, fc_comp);
  EXPECT_GT(fc_comp, sj_comp);
}

}  // namespace
}  // namespace fi::baselines
