// Fuzz target for the snapshot parser — the one code path that consumes
// fully untrusted bytes (`fi_sim --load <file>`). `snapshot::parse` must
// reject every malformed image with a Status, never crash, over-read or
// over-allocate.
//
// Two build modes:
//
//   * FI_ENABLE_FUZZERS=ON with Clang: linked against libFuzzer
//     (`-fsanitize=fuzzer,address,undefined`) as the `fuzz_snapshot_reader`
//     binary. Run with a corpus directory:  ./fuzz_snapshot_reader corpus/
//
//   * any other compiler: a plain `main` replays (a) every file passed on
//     argv and (b) a built-in deterministic battery of truncations and
//     bit-flips over a synthetic header, so the same invariants are
//     exercised under GCC and in ctest without libFuzzer.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"

namespace {

// One fuzz iteration: parse must return (not crash), and a success implies
// the input round-trips its framing invariants.
void one_input(std::span<const std::uint8_t> data) {
  auto result = fi::snapshot::parse(data, "fuzz-input");
  if (result.is_ok()) {
    // A parse that accepts the image must have consumed a digest-valid
    // body; re-parsing the identical bytes must agree.
    auto again = fi::snapshot::parse(data, "fuzz-input");
    if (!again.is_ok() ||
        again.value().body.size() != result.value().body.size()) {
      __builtin_trap();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  one_input({data, size});
  return 0;
}

#if !defined(FI_HAVE_LIBFUZZER)

#include <fstream>
#include <iostream>
#include <iterator>

namespace {

// xorshift64: deterministic harness-local noise (this binary is not part
// of the simulation, but keep it seed-stable anyway so failures replay).
std::uint64_t next_noise(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::vector<std::uint8_t> synthetic_header() {
  std::vector<std::uint8_t> bytes(fi::snapshot::kMagic,
                                  fi::snapshot::kMagic + 8);
  const std::uint32_t version = fi::snapshot::kFormatVersion;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(version >> (8 * i)));
  }
  const std::string spec = "[run]\nepochs = 1\n";
  const std::uint64_t spec_len = spec.size();
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(spec_len >> (8 * i)));
  }
  bytes.insert(bytes.end(), spec.begin(), spec.end());
  for (int i = 0; i < 8; ++i) bytes.push_back(0);  // body_len = 0
  for (int i = 0; i < 32; ++i) bytes.push_back(0);  // bogus digest
  return bytes;
}

int replay_battery() {
  const std::vector<std::uint8_t> base = synthetic_header();
  std::size_t ran = 0;
  // Every prefix: truncation at each byte boundary.
  for (std::size_t n = 0; n <= base.size(); ++n) {
    one_input({base.data(), n});
    ++ran;
  }
  // Single-bit flips across the whole image.
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> flipped = base;
      flipped[byte] = static_cast<std::uint8_t>(
          flipped[byte] ^ (1u << bit));
      one_input(flipped);
      ++ran;
    }
  }
  // Length-field lies: spec_len / body_len set to huge and boundary values.
  for (std::uint64_t lie :
       {std::uint64_t{1}, std::uint64_t{0x7fffffffffffffffULL},
        std::uint64_t{0xffffffffffffffffULL}}) {
    for (std::size_t off : {std::size_t{12}, base.size() - 40}) {
      std::vector<std::uint8_t> lied = base;
      for (int i = 0; i < 8; ++i) {
        lied[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(lie >> (8 * i));
      }
      one_input(lied);
      ++ran;
    }
  }
  // Deterministic random images, assorted sizes.
  std::uint64_t state = 0x3243f6a8885a308dULL;
  for (std::size_t size : {std::size_t{0}, std::size_t{7}, std::size_t{64},
                           std::size_t{513}, std::size_t{4096}}) {
    std::vector<std::uint8_t> noise(size);
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(next_noise(state));
    }
    one_input(noise);
    ++ran;
  }
  std::cout << "fuzz_snapshot_reader: replayed " << ran
            << " synthetic inputs, no crash\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "fuzz_snapshot_reader: cannot read " << argv[i] << "\n";
      return 2;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    one_input(bytes);
    std::cout << "fuzz_snapshot_reader: " << argv[i] << " ok\n";
  }
  if (argc > 1) return 0;
  return replay_battery();
}

#endif  // !FI_HAVE_LIBFUZZER
