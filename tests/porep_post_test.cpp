#include <gtest/gtest.h>

#include <vector>

#include "crypto/porep.h"
#include "crypto/post.h"
#include "util/prng.h"

namespace fi::crypto {
namespace {

std::vector<std::uint8_t> random_data(std::size_t size, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

const SealParams kParams{.work = 2, .challenges = 4};

// ---------------------------------------------------------------------------
// Sealing
// ---------------------------------------------------------------------------

TEST(PoRep, SealUnsealRoundTrip) {
  for (std::size_t size : {1u, 63u, 64u, 65u, 1000u, 4096u}) {
    const auto raw = random_data(size, size);
    const ReplicaId id{7, 3, 99};
    const auto sealed = seal(raw, id, kParams);
    ASSERT_EQ(sealed.size(), raw.size());
    EXPECT_EQ(unseal(sealed, id, kParams), raw) << "size=" << size;
  }
}

TEST(PoRep, SealedBytesDifferFromRaw) {
  const auto raw = random_data(1024, 1);
  const auto sealed = seal(raw, ReplicaId{1, 1, 1}, kParams);
  EXPECT_NE(sealed, raw);
}

TEST(PoRep, ReplicasUniquePerProvider) {
  // Sybil resistance: the same file sealed by two providers (or into two
  // sectors) yields different replicas and commitments.
  const auto raw = random_data(1024, 2);
  const auto a = seal(raw, ReplicaId{1, 5, 9}, kParams);
  const auto b = seal(raw, ReplicaId{2, 5, 9}, kParams);
  const auto c = seal(raw, ReplicaId{1, 6, 9}, kParams);
  const auto d = seal(raw, ReplicaId{1, 5, 10}, kParams);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(replica_commitment(a), replica_commitment(b));
}

TEST(PoRep, SealIsDeterministic) {
  const auto raw = random_data(512, 3);
  const ReplicaId id{4, 4, 4};
  EXPECT_EQ(seal(raw, id, kParams), seal(raw, id, kParams));
}

TEST(PoRep, WrongKeyUnsealGarbles) {
  const auto raw = random_data(512, 4);
  const auto sealed = seal(raw, ReplicaId{1, 2, 3}, kParams);
  EXPECT_NE(unseal(sealed, ReplicaId{1, 2, 4}, kParams), raw);
}

// ---------------------------------------------------------------------------
// Seal proofs (the SNARK substitute)
// ---------------------------------------------------------------------------

TEST(PoRep, ValidSealProofVerifies) {
  const auto raw = random_data(4096, 5);
  const ReplicaId id{11, 22, 33};
  const auto sealed = seal(raw, id, kParams);
  const SealProof proof = prove_seal(raw, sealed, id, kParams);
  EXPECT_EQ(proof.comm_d, merkle_root_of_data(raw));
  EXPECT_EQ(proof.comm_r, replica_commitment(sealed));
  EXPECT_TRUE(verify_seal(proof, kParams));
}

TEST(PoRep, ProofForDifferentIdentityFails) {
  // A provider cannot claim another provider's replica as its own.
  const auto raw = random_data(4096, 6);
  const ReplicaId id{11, 22, 33};
  const auto sealed = seal(raw, id, kParams);
  SealProof proof = prove_seal(raw, sealed, id, kParams);
  proof.id.provider = 12;
  EXPECT_FALSE(verify_seal(proof, kParams));
}

TEST(PoRep, UnsealedDataPassedAsReplicaFails) {
  // Storing the raw data and claiming it is a replica must not verify —
  // the encoding relation fails at the challenges.
  const auto raw = random_data(4096, 7);
  const ReplicaId id{1, 2, 3};
  SealProof forged = prove_seal(raw, raw, id, kParams);
  EXPECT_FALSE(verify_seal(forged, kParams));
}

TEST(PoRep, TamperedOpeningFails) {
  const auto raw = random_data(4096, 8);
  const ReplicaId id{1, 2, 3};
  const auto sealed = seal(raw, id, kParams);
  SealProof proof = prove_seal(raw, sealed, id, kParams);
  proof.openings[0].sealed_block[0] ^= 1;
  EXPECT_FALSE(verify_seal(proof, kParams));
}

TEST(PoRep, WrongChallengeIndexFails) {
  const auto raw = random_data(4096, 9);
  const ReplicaId id{1, 2, 3};
  const auto sealed = seal(raw, id, kParams);
  SealProof proof = prove_seal(raw, sealed, id, kParams);
  proof.openings[1].index += 1;
  EXPECT_FALSE(verify_seal(proof, kParams));
}

TEST(PoRep, ChallengeCountMismatchFails) {
  const auto raw = random_data(4096, 10);
  const ReplicaId id{1, 2, 3};
  const auto sealed = seal(raw, id, kParams);
  SealProof proof = prove_seal(raw, sealed, id, kParams);
  proof.openings.pop_back();
  EXPECT_FALSE(verify_seal(proof, kParams));
}

TEST(PoRep, HigherWorkFactorChangesSeal) {
  const auto raw = random_data(512, 11);
  const ReplicaId id{1, 2, 3};
  const SealParams slow{.work = 16, .challenges = 4};
  EXPECT_NE(seal(raw, id, kParams), seal(raw, id, slow));
  // Proof must be verified under the parameters it was produced with.
  const auto sealed = seal(raw, id, slow);
  const SealProof proof = prove_seal(raw, sealed, id, slow);
  EXPECT_TRUE(verify_seal(proof, slow));
  EXPECT_FALSE(verify_seal(proof, kParams));
}

// ---------------------------------------------------------------------------
// Capacity replicas
// ---------------------------------------------------------------------------

TEST(PoRep, CapacityReplicaRegeneratesIdentically) {
  const auto cr1 = make_capacity_replica(9, 2, 0, 2048, kParams);
  const auto cr2 = make_capacity_replica(9, 2, 0, 2048, kParams);
  EXPECT_EQ(cr1, cr2);  // Fig. 2c: a dropped CR is recoverable bit-for-bit
}

TEST(PoRep, CapacityReplicasDistinctPerIndex) {
  const auto cr0 = make_capacity_replica(9, 2, 0, 2048, kParams);
  const auto cr1 = make_capacity_replica(9, 2, 1, 2048, kParams);
  EXPECT_NE(cr0, cr1);
}

TEST(PoRep, CapacityReplicaUnsealsToZeros) {
  const auto cr = make_capacity_replica(9, 2, 5, 1024, kParams);
  const ReplicaId id{9, 2, kCapacityNonceBit | 5};
  EXPECT_EQ(unseal(cr, id, kParams), std::vector<std::uint8_t>(1024, 0));
}

TEST(PoRep, ZeroCommDCached) {
  EXPECT_EQ(zero_comm_d(4096), zero_comm_d(4096));
  EXPECT_EQ(zero_comm_d(1024),
            merkle_root_of_data(std::vector<std::uint8_t>(1024, 0)));
}

// ---------------------------------------------------------------------------
// WindowPoSt
// ---------------------------------------------------------------------------

TEST(PoSt, ValidWindowProofVerifies) {
  const auto raw = random_data(4096, 20);
  const ReplicaId id{3, 1, 7};
  const auto sealed = seal(raw, id, kParams);
  const Hash256 beacon = hash_u64s("test/beacon", {100});
  const auto proof = prove_window(sealed, id, beacon, 100, 3);
  EXPECT_TRUE(verify_window(proof, replica_commitment(sealed), beacon, 3));
}

TEST(PoSt, StaleBeaconFails) {
  const auto raw = random_data(4096, 21);
  const ReplicaId id{3, 1, 7};
  const auto sealed = seal(raw, id, kParams);
  const Hash256 beacon_old = hash_u64s("test/beacon", {100});
  const Hash256 beacon_new = hash_u64s("test/beacon", {101});
  const auto proof = prove_window(sealed, id, beacon_old, 100, 3);
  // A proof precomputed for an old beacon cannot satisfy a new epoch.
  EXPECT_FALSE(verify_window(proof, replica_commitment(sealed), beacon_new, 3));
}

TEST(PoSt, WrongCommitmentFails) {
  const auto raw = random_data(4096, 22);
  const ReplicaId id{3, 1, 7};
  const auto sealed = seal(raw, id, kParams);
  const Hash256 beacon = hash_u64s("test/beacon", {5});
  const auto proof = prove_window(sealed, id, beacon, 5, 3);
  Hash256 other = replica_commitment(sealed);
  other.bytes[0] ^= 1;
  EXPECT_FALSE(verify_window(proof, other, beacon, 3));
}

TEST(PoSt, ProverWithoutDataCannotAnswer) {
  // Holding only a prefix of the sealed replica fails whenever a challenge
  // lands in the missing suffix; with enough challenges this is near-certain.
  const auto raw = random_data(64 * 64, 23);
  const ReplicaId id{3, 1, 7};
  const auto sealed = seal(raw, id, kParams);
  const Hash256 comm_r = replica_commitment(sealed);
  std::vector<std::uint8_t> truncated(sealed.begin(),
                                      sealed.begin() + 64 * 8);
  bool any_failure = false;
  for (std::uint64_t epoch = 0; epoch < 16 && !any_failure; ++epoch) {
    const Hash256 beacon = hash_u64s("test/beacon", {epoch});
    // The cheating prover substitutes zero blocks for missing ones.
    auto forged = prove_window(truncated, id, beacon, epoch, 4);
    forged.comm_r = comm_r;  // claims the full commitment
    if (!verify_window(forged, comm_r, beacon, 4)) any_failure = true;
  }
  EXPECT_TRUE(any_failure);
}

TEST(PoSt, ChallengesDeterministicAndBeaconSensitive) {
  const Hash256 beacon1 = hash_u64s("b", {1});
  const Hash256 beacon2 = hash_u64s("b", {2});
  const Hash256 comm = hash_u64s("c", {1});
  EXPECT_EQ(window_challenges(beacon1, comm, 8, 1000),
            window_challenges(beacon1, comm, 8, 1000));
  EXPECT_NE(window_challenges(beacon1, comm, 8, 1000),
            window_challenges(beacon2, comm, 8, 1000));
}

TEST(PoSt, WinningTicketDependsOnMinerAndBeacon) {
  const Hash256 beacon = hash_u64s("b", {1});
  const Hash256 comm = hash_u64s("c", {1});
  EXPECT_NE(winning_ticket(beacon, 1, comm), winning_ticket(beacon, 2, comm));
  EXPECT_EQ(winning_ticket(beacon, 1, comm), winning_ticket(beacon, 1, comm));
}

}  // namespace
}  // namespace fi::crypto
