#include <gtest/gtest.h>

#include <cmath>

#include "analysis/allocation_model.h"
#include "analysis/bounds.h"
#include "analysis/placement.h"

namespace fi::analysis {
namespace {

// ---------------------------------------------------------------------------
// Theorem bounds (closed forms, checked against the paper's worked numbers)
// ---------------------------------------------------------------------------

TEST(Bounds, Theorem1CapacityBound) {
  // Uniform workload: every file size 1, value = minValue, capPara chosen
  // so the value limit doesn't bind. Then r1 = 1 and the bound is
  // Ns*minCap/(2k).
  const double r1 = theorem1_r1(/*sum_size_times_value=*/1000.0,
                                /*sum_size=*/1000.0, /*min_value=*/1.0);
  EXPECT_DOUBLE_EQ(r1, 1.0);
  const double r2 = theorem1_r2(/*sum_value=*/1000.0, /*sum_size=*/1000.0,
                                /*min_capacity=*/1.0, /*min_value=*/1.0,
                                /*cap_para=*/1000.0);
  EXPECT_DOUBLE_EQ(r2, 0.001);
  const double bound = theorem1_capacity_bound(1e6, 1.0, r1, r2, 20);
  EXPECT_DOUBLE_EQ(bound, 1e6 / 40.0);  // capacity-limited regime
}

TEST(Bounds, Theorem1ValueLimitedRegime) {
  // High-value files make the value restriction bind (r2 large).
  const double bound = theorem1_capacity_bound(1e6, 1.0, 1.0, 100.0, 2);
  EXPECT_DOUBLE_EQ(bound, 1e6 / 100.0);
}

TEST(Bounds, Theorem2MatchesPaperExample) {
  // cap/size = 1000, Ns <= 1e12  =>  Pr < 1e-50 (paper, §V-B2).
  const double p = theorem2_collision_bound(1e12, 1000.0, 1.0);
  EXPECT_LT(p, 1e-50);
  EXPECT_GT(p, 0.0);
}

TEST(Bounds, Theorem2MonotoneInRatio) {
  EXPECT_GT(theorem2_collision_bound(1e6, 100.0, 1.0),
            theorem2_collision_bound(1e6, 200.0, 1.0));
  EXPECT_GT(theorem2_collision_bound(1e7, 100.0, 1.0),
            theorem2_collision_bound(1e6, 100.0, 1.0));
}

TEST(Bounds, KlDivergenceProperties) {
  EXPECT_NEAR(kl_divergence(0.5, 0.5), 0.0, 1e-12);
  EXPECT_GT(kl_divergence(0.9, 0.1), 0.0);
  // Lemma 2: for p <= 1/5 and x >= 5p, D(x||p) >= (x/2)·ln(x/p).
  for (double p : {0.01, 0.05, 0.1, 0.2}) {
    for (double x = 5 * p; x < 1.0; x += 0.05) {
      EXPECT_GE(kl_divergence(x, p), 0.5 * x * std::log(x / p) - 1e-12)
          << "x=" << x << " p=" << p;
    }
  }
}

TEST(Bounds, Theorem3WorkedExampleFirstTwoTerms) {
  // k=20, Ns=1e6, capPara=1e3, lambda=0.5 (paper §V-B3):
  //   5*lambda^k = 5*2^-20 ≈ 5e-6;  lambda^(k/2) = 2^-10 ≈ 0.001.
  EXPECT_NEAR(5.0 * std::pow(0.5, 20), 4.77e-6, 1e-7);
  EXPECT_NEAR(std::pow(0.5, 10), 9.77e-4, 1e-6);
  // The full bound is dominated by one of the three terms and must be at
  // least the max of the first two.
  const double bound = theorem3_gamma_lost_bound(0.5, 20, 1e6, 0.005, 1e3);
  EXPECT_GE(bound, std::pow(0.5, 10));
}

TEST(Bounds, Theorem3DecreasesWithK) {
  for (std::uint32_t k = 4; k < 40; k += 4) {
    EXPECT_GE(theorem3_gamma_lost_bound(0.5, k, 1e6, 0.5, 1e3),
              theorem3_gamma_lost_bound(0.5, k + 4, 1e6, 0.5, 1e3));
  }
}

TEST(Bounds, Theorem4ReproducesPaperExample) {
  // k=20, Ns=1e6, capPara=1e3, lambda=0.5, c=1e-18 => 0.0046 (§V-B4).
  const double gamma = theorem4_deposit_ratio_bound(0.5, 20, 1e6, 1e3);
  EXPECT_NEAR(gamma, 0.0046, 0.0002);
}

TEST(Bounds, Theorem4IncreasesWithLambda) {
  double prev = 0.0;
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double g = theorem4_deposit_ratio_bound(lambda, 20, 1e6, 1e3);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(Bounds, FileLossProbabilityIsLambdaToCp) {
  EXPECT_DOUBLE_EQ(file_loss_probability(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(file_loss_probability(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(file_loss_probability(1.0, 3), 1.0);
}

// ---------------------------------------------------------------------------
// Allocation model (Table III machinery)
// ---------------------------------------------------------------------------

TEST(AllocationModelTest, MeanUsageMatchesRedundancy) {
  auto model = AllocationModel::from_distribution(
      util::SizeDistribution::uniform01, 100'000, 100, 2.0, 1);
  EXPECT_NEAR(model.mean_usage(), 0.5, 1e-9);
}

TEST(AllocationModelTest, MaxUsageInPaperRange) {
  // Table III row (Ncp=1e5, Ns=100): paper reports ~0.57.
  auto model = AllocationModel::from_distribution(
      util::SizeDistribution::uniform01, 100'000, 100, 2.0, 2);
  double max_over_rounds = 0.0;
  for (int round = 0; round < 10; ++round) {
    max_over_rounds = std::max(max_over_rounds, model.reallocate_all());
  }
  EXPECT_GT(max_over_rounds, 0.5);
  EXPECT_LT(max_over_rounds, 0.75);
}

TEST(AllocationModelTest, RefreshRunningMaxIsMonotoneAndBounded) {
  auto model = AllocationModel::from_distribution(
      util::SizeDistribution::exponential, 50'000, 50, 2.0, 3);
  const double m1 = model.refresh(50'000);
  const double m2 = model.refresh(50'000);
  EXPECT_GE(m2, 0.5);
  EXPECT_LT(m2, 0.8);
  EXPECT_GE(m2 + 1e-12, m1 * 0.0);  // both well-defined
  EXPECT_GT(m1, 0.5);
}

TEST(AllocationModelTest, NoSectorNearCapacityAtScale) {
  // Theorem 2's event (usage > 7/8) should never occur at cap/size >= 1000.
  auto model = AllocationModel::from_distribution(
      util::SizeDistribution::uniform01, 200'000, 100, 2.0, 4);
  for (int round = 0; round < 5; ++round) {
    model.reallocate_all();
    EXPECT_EQ(model.fraction_above_usage(7.0 / 8.0), 0.0);
  }
}

TEST(AllocationModelTest, ExplicitSizesRespected) {
  AllocationModel model({1.0f, 1.0f, 1.0f, 1.0f}, 2, 2.0, 5);
  EXPECT_EQ(model.sector_count(), 2u);
  EXPECT_EQ(model.backup_count(), 4u);
  EXPECT_DOUBLE_EQ(model.sector_capacity(), 4.0);
  EXPECT_NEAR(model.mean_usage(), 0.5, 1e-12);
}

// ---------------------------------------------------------------------------
// Placement + adversaries (Theorem 3 machinery)
// ---------------------------------------------------------------------------

TEST(PlacementTest, RandomCorruptionLossMatchesLambdaToK) {
  // E[lost fraction] = lambda^k for i.i.d. placement; with k=3, λ=0.5
  // that's 1/8. Average over several corruption draws.
  const ReplicaPlacement placement(200'000, 3, 100, 1);
  util::Xoshiro256 rng(2);
  double total = 0.0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    total += placement.lost_fraction(random_corruption(100, 0.5, rng));
  }
  EXPECT_NEAR(total / kTrials, 0.125, 0.01);
}

TEST(PlacementTest, NoCorruptionNoLoss) {
  const ReplicaPlacement placement(1000, 3, 50, 3);
  const std::vector<bool> none(50, false);
  EXPECT_EQ(placement.lost_files(none), 0u);
  const std::vector<bool> all(50, true);
  EXPECT_EQ(placement.lost_files(all), 1000u);
}

TEST(PlacementTest, TargetedBeatsRandomAdversary) {
  // When files are scarce relative to sectors, an informed adversary can
  // concentrate its budget on whole replica sets: with 100 files of 3
  // replicas and a 60-sector budget it destroys ~20% of files, while random
  // corruption manages only ~λ^3 ≈ 2.7%.
  const ReplicaPlacement placement(100, 3, 200, 4);
  util::Xoshiro256 rng(5);
  double random_loss = 0.0, targeted_loss = 0.0;
  for (int t = 0; t < 5; ++t) {
    random_loss += placement.lost_fraction(random_corruption(200, 0.3, rng));
    targeted_loss +=
        placement.lost_fraction(targeted_corruption(placement, 0.3, rng));
  }
  EXPECT_GT(targeted_loss, 2.0 * random_loss);
}

TEST(PlacementTest, TargetedAdversaryStaysWithinTheoremBound) {
  // The whole point of Theorem 3: even the targeted adversary cannot push
  // γ_lost above the bound (w.h.p.). Use workable scale: k=8, Ns=300.
  const double lambda = 0.3;
  const ReplicaPlacement placement(50'000, 8, 300, 6);
  util::Xoshiro256 rng(7);
  const double gamma_v_m = 1.0;
  const double cap_para = 50'000.0 * 8 / 300.0 / 8;  // Nv/Ns with Nv=files
  const double bound =
      theorem3_gamma_lost_bound(lambda, 8, 300, gamma_v_m, cap_para);
  for (int t = 0; t < 3; ++t) {
    const double loss =
        placement.lost_fraction(targeted_corruption(placement, lambda, rng));
    EXPECT_LE(loss, bound) << "trial " << t;
  }
}

TEST(PlacementTest, Lemma1SplittingUpperBoundsValuedLoss) {
  // Lemma 1: a network of heterogeneous-value files loses at most as much
  // value as the equivalent network where every file is split into
  // unit-value descriptors with k replicas each. Verify empirically: a
  // valued file of v units has k·v replicas and dies at rate λ^{kv}, while
  // its v split descriptors die independently at λ^k each — losing
  // strictly more value in expectation.
  constexpr std::uint32_t kSectors = 60;
  constexpr std::uint32_t kK = 2;
  constexpr double kLambda = 0.5;
  util::Xoshiro256 rng(11);
  std::vector<std::uint32_t> values;
  std::uint64_t total_units = 0;
  for (int i = 0; i < 4000; ++i) {
    values.push_back(1 + static_cast<std::uint32_t>(rng.uniform_below(3)));
    total_units += values.back();
  }
  const ValuedReplicaPlacement valued(values, kK, kSectors, 21);
  const ReplicaPlacement split(total_units, kK, kSectors, 22);

  double valued_loss = 0.0, split_loss = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto corrupted = random_corruption(kSectors, kLambda, rng);
    valued_loss += valued.lost_value_fraction(corrupted);
    split_loss += split.lost_fraction(corrupted);
  }
  EXPECT_LT(valued_loss / kTrials, split_loss / kTrials);
  // And the split loss itself concentrates near λ^k.
  EXPECT_NEAR(split_loss / kTrials, std::pow(kLambda, kK), 0.03);
}

TEST(PlacementTest, ValuedPlacementAccounting) {
  const ValuedReplicaPlacement placement({1, 2, 3}, 2, 10, 5);
  EXPECT_EQ(placement.file_count(), 3u);
  EXPECT_EQ(placement.total_value(), 6u);
  const std::vector<bool> all(10, true);
  EXPECT_EQ(placement.lost_value(all), 6u);
  EXPECT_DOUBLE_EQ(placement.lost_value_fraction(all), 1.0);
  const std::vector<bool> none(10, false);
  EXPECT_EQ(placement.lost_value(none), 0u);
}

TEST(PlacementTest, BudgetRespectedByAdversaries) {
  const ReplicaPlacement placement(1000, 4, 100, 8);
  util::Xoshiro256 rng(9);
  for (double lambda : {0.1, 0.25, 0.5}) {
    const auto random_set = random_corruption(100, lambda, rng);
    const auto targeted_set = targeted_corruption(placement, lambda, rng);
    const auto count = [](const std::vector<bool>& v) {
      return std::count(v.begin(), v.end(), true);
    };
    EXPECT_EQ(count(random_set), static_cast<long>(lambda * 100));
    EXPECT_EQ(count(targeted_set), static_cast<long>(lambda * 100));
  }
}

}  // namespace
}  // namespace fi::analysis
