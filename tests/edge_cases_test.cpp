#include <gtest/gtest.h>

#include <optional>

#include "core/network.h"
#include "ledger/account.h"

/// Edge cases of the protocol engine: mid-flight corruptions, transient
/// outages, stale requests, and boundary arithmetic — the corners that the
/// happy-path suites don't reach.
namespace fi::core {
namespace {

Params edge_params() {
  Params p;
  p.min_capacity = 4 * 1024;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 10.0;
  p.gamma_deposit = 0.5;
  p.proof_cycle = 100;
  p.proof_due = 150;
  p.proof_deadline = 300;
  p.avg_refresh = 5.0;  // busy refreshes: several tests race them
  p.verify_proofs = false;
  p.cr_size = 1024;
  return p;
}

struct EdgeFixture : ::testing::Test {
  void build(int sectors = 4, ByteCount capacity = 4 * 4096) {
    net = std::make_unique<Network>(edge_params(), ledger, /*seed=*/21);
    net->set_auto_prove(true);
    net->subscribe([this](const Event& e) { events.push_back(e); });
    client = ledger.create_account(1'000'000);
    for (int i = 0; i < sectors; ++i) {
      providers.push_back(ledger.create_account(1'000'000));
      sectors_.push_back(
          net->sector_register(providers.back(), capacity).value());
    }
  }

  FileId add_and_store(ByteCount size, TokenAmount value) {
    auto id = net->file_add(client, {size, value, {}});
    EXPECT_TRUE(id.is_ok());
    for (ReplicaIndex i = 0; i < net->allocations().replica_count(id.value());
         ++i) {
      const AllocEntry& e = net->allocations().entry(id.value(), i);
      if (e.state != AllocState::alloc || e.next == kNoSector) continue;
      EXPECT_TRUE(net->file_confirm(net->sectors().at(e.next).owner,
                                    id.value(), i, e.next, {}, std::nullopt)
                      .is_ok());
    }
    net->advance_to(net->now() +
                    net->params().transfer_window(size));
    return id.value();
  }

  /// Drives chain tasks until some replica of `file` is mid-refresh
  /// (state alloc with both prev and next set).
  void force_refresh(FileId file) {
    for (int guard = 0; guard < 20000; ++guard) {
      net->advance_to(net->next_task_time());
      for (ReplicaIndex i = 0; i < net->allocations().replica_count(file);
           ++i) {
        const AllocEntry& e = net->allocations().entry(file, i);
        if (e.next != kNoSector && e.prev != kNoSector &&
            e.state == AllocState::alloc) {
          return;
        }
      }
    }
    FAIL() << "no refresh started";
  }

  ledger::Ledger ledger;
  std::unique_ptr<Network> net;
  ClientId client = 0;
  std::vector<ProviderId> providers;
  std::vector<SectorId> sectors_;
  std::vector<Event> events;
};

// ---------------------------------------------------------------------------
// Transient outages (restore_sector_physical)
// ---------------------------------------------------------------------------

TEST_F(EdgeFixture, TransientOutageSlashedButNotConfiscated) {
  build();
  const FileId id = add_and_store(1000, 20);
  const SectorId victim = net->allocations().entry(id, 0).prev;
  const TokenAmount deposit = net->deposits().remaining(victim);

  net->corrupt_sector_physical(victim);
  // Past ProofDue (two cycles) but back before ProofDeadline.
  net->advance_to(net->now() + 2 * net->params().proof_cycle + 5);
  net->restore_sector_physical(victim);
  net->advance_to(net->now() + 3 * net->params().proof_cycle);

  EXPECT_EQ(net->sectors().at(victim).state, SectorState::normal);
  EXPECT_LT(net->deposits().remaining(victim), deposit);  // slashed
  EXPECT_GT(net->deposits().remaining(victim), 0u);       // not confiscated
  EXPECT_TRUE(net->file_exists(id));
}

TEST_F(EdgeFixture, RestoreAfterConfiscationIsANoOp) {
  build();
  const FileId id = add_and_store(1000, 20);
  const SectorId victim = net->allocations().entry(id, 0).prev;
  net->corrupt_sector_now(victim);
  net->restore_sector_physical(victim);  // too late: chain already acted
  EXPECT_EQ(net->sectors().at(victim).state, SectorState::corrupted);
  EXPECT_TRUE(net->is_physically_corrupted(victim));
}

// ---------------------------------------------------------------------------
// Corruption racing a refresh
// ---------------------------------------------------------------------------

TEST_F(EdgeFixture, RefreshTargetDiesMidFlight) {
  build(6);
  const FileId id = add_and_store(1000, 20);
  force_refresh(id);
  // Find the in-flight entry and kill its target.
  bool exercised = false;
  for (ReplicaIndex i = 0; i < net->allocations().replica_count(id); ++i) {
    const AllocEntry& e = net->allocations().entry(id, i);
    if (e.next != kNoSector && e.prev != kNoSector) {
      const SectorId target = e.next;
      net->corrupt_sector_now(target);
      const AllocEntry& after = net->allocations().entry(id, i);
      // The transfer is cancelled; the old holder keeps the replica.
      EXPECT_EQ(after.next, kNoSector);
      EXPECT_EQ(after.state, AllocState::normal);
      EXPECT_NE(after.prev, target);
      exercised = true;
      break;
    }
  }
  ASSERT_TRUE(exercised) << "no in-flight refresh found";
  net->advance_to(net->now() + 5 * net->params().proof_cycle);
  EXPECT_TRUE(net->file_exists(id));
}

TEST_F(EdgeFixture, RefreshSourceDiesAfterConfirmCompletesSwap) {
  build(6);
  const FileId id = add_and_store(1000, 20);
  force_refresh(id);
  bool exercised = false;
  for (ReplicaIndex i = 0; i < net->allocations().replica_count(id); ++i) {
    const AllocEntry& e = net->allocations().entry(id, i);
    if (e.next != kNoSector && e.prev != kNoSector &&
        e.state == AllocState::alloc) {
      const SectorId source = e.prev;
      const SectorId target = e.next;
      // The successor confirms, then the source dies before CheckRefresh.
      ASSERT_TRUE(net->file_confirm(net->sectors().at(target).owner, id, i,
                                    target, {}, std::nullopt)
                      .is_ok());
      net->corrupt_sector_now(source);
      const AllocEntry& after = net->allocations().entry(id, i);
      // The healthy new copy is adopted instead of being thrown away.
      EXPECT_EQ(after.prev, target);
      EXPECT_EQ(after.next, kNoSector);
      EXPECT_EQ(after.state, AllocState::normal);
      exercised = true;
      break;
    }
  }
  ASSERT_TRUE(exercised);
  net->advance_to(net->now() + 5 * net->params().proof_cycle);
  EXPECT_TRUE(net->file_exists(id));
}

TEST_F(EdgeFixture, UploadTargetDiesBeforeConfirmToleratedAsDeadSlot) {
  build(4, 2 * 4096);
  auto id = net->file_add(client, {1000, 20, {}});  // cp = 4
  ASSERT_TRUE(id.is_ok());
  // Confirm three replicas; the fourth's sector dies before confirming.
  ReplicaIndex unconfirmed = 4;
  for (ReplicaIndex i = 0; i < 4; ++i) {
    const AllocEntry& e = net->allocations().entry(id.value(), i);
    if (i == 3) {
      net->corrupt_sector_now(e.next);
      unconfirmed = i;
      break;
    }
    ASSERT_TRUE(net->file_confirm(net->sectors().at(e.next).owner, id.value(),
                                  i, e.next, {}, std::nullopt)
                    .is_ok());
  }
  ASSERT_LT(unconfirmed, 4u);
  net->advance_to(net->params().transfer_window(1000));
  // Fig. 7: corrupted entries are tolerated — the file stores with a dead
  // replica slot instead of failing the upload.
  ASSERT_TRUE(net->file_exists(id.value()));
  EXPECT_EQ(net->allocations().entry(id.value(), unconfirmed).state,
            AllocState::corrupted);
  EXPECT_EQ(net->stats().files_stored, 1u);
  EXPECT_EQ(net->stats().upload_failures, 0u);
}

// ---------------------------------------------------------------------------
// Stale and malformed requests
// ---------------------------------------------------------------------------

TEST_F(EdgeFixture, RequestsAgainstUnknownEntitiesRejected) {
  build();
  EXPECT_EQ(net->file_get(client, 999).status().code(),
            util::ErrorCode::not_found);
  EXPECT_EQ(net->file_discard(client, 999).code(),
            util::ErrorCode::not_found);
  EXPECT_EQ(net->sector_disable(providers[0], 999).code(),
            util::ErrorCode::not_found);
  EXPECT_EQ(
      net->file_prove_trusted(providers[0], 999, 0, sectors_[0], 1).code(),
      util::ErrorCode::not_found);
}

TEST_F(EdgeFixture, ConfirmAfterUploadFailureIsStale) {
  build();
  auto id = net->file_add(client, {1000, 20, {}});
  ASSERT_TRUE(id.is_ok());
  const AllocEntry e0 = net->allocations().entry(id.value(), 0);
  net->advance_to(net->params().transfer_window(1000));  // nobody confirmed
  ASSERT_FALSE(net->file_exists(id.value()));
  EXPECT_EQ(net->file_confirm(net->sectors().at(e0.next).owner, id.value(), 0,
                              e0.next, {}, std::nullopt)
                .code(),
            util::ErrorCode::not_found);
}

TEST_F(EdgeFixture, TrustedProveRejectedWhenVerificationOn) {
  Params p = edge_params();
  p.verify_proofs = true;
  net = std::make_unique<Network>(p, ledger, 3);
  client = ledger.create_account(1'000'000);
  const ProviderId provider = ledger.create_account(1'000'000);
  const SectorId s = net->sector_register(provider, 4 * 4096).value();
  EXPECT_EQ(net->file_prove_trusted(provider, 1, 0, s, 1).code(),
            util::ErrorCode::failed_precondition);
}

TEST_F(EdgeFixture, AdvanceBackwardsThrows) {
  build();
  net->advance_to(100);
  EXPECT_THROW(net->advance_to(50), util::InvariantViolation);
}

// ---------------------------------------------------------------------------
// Sector lifecycle corners
// ---------------------------------------------------------------------------

TEST_F(EdgeFixture, DisabledSectorDrainsViaFileRemovalToo) {
  build();
  const FileId id = add_and_store(1000, 20);
  // Disable every sector hosting a replica, then discard the file: the
  // sectors drain through file removal rather than refresh.
  std::vector<SectorId> hosts;
  for (ReplicaIndex i = 0; i < 2; ++i) {
    const SectorId s = net->allocations().entry(id, i).prev;
    if (net->sectors().at(s).state == SectorState::normal) {
      ASSERT_TRUE(net->sector_disable(net->sectors().at(s).owner, s).is_ok());
      hosts.push_back(s);
    }
  }
  ASSERT_TRUE(net->file_discard(client, id).is_ok());
  net->advance_to(net->now() + 2 * net->params().proof_cycle);
  for (SectorId s : hosts) {
    EXPECT_EQ(net->sectors().at(s).state, SectorState::removed) << s;
  }
}

TEST_F(EdgeFixture, DoubleCorruptionConfiscatesOnce) {
  build();
  const FileId id = add_and_store(1000, 20);
  const SectorId victim = net->allocations().entry(id, 0).prev;
  net->corrupt_sector_now(victim);
  const TokenAmount pool = net->deposits().pool_balance();
  net->corrupt_sector_now(victim);  // idempotent
  EXPECT_EQ(net->deposits().pool_balance(), pool);
  EXPECT_EQ(net->stats().sectors_corrupted, 1u);
}

TEST_F(EdgeFixture, DepositRoundingNeverUndercollateralizes) {
  Params p = edge_params();
  p.gamma_deposit = 0.00001;  // absurdly small: still rounds up to >= 1
  net = std::make_unique<Network>(p, ledger, 9);
  const ProviderId provider = ledger.create_account(1'000'000);
  const auto s = net->sector_register(provider, p.min_capacity);
  ASSERT_TRUE(s.is_ok());
  EXPECT_GE(net->deposits().remaining(s.value()), 1u);
}

// ---------------------------------------------------------------------------
// Ledger corner
// ---------------------------------------------------------------------------

TEST(LedgerEdge, SelfTransferIsANetNoOp) {
  ledger::Ledger ledger;
  const AccountId a = ledger.create_account(100);
  ASSERT_TRUE(ledger.transfer(a, a, 40).is_ok());
  EXPECT_EQ(ledger.balance(a), 100u);
  EXPECT_EQ(ledger.transfer(a, a, 200).code(),
            util::ErrorCode::insufficient_funds);
}

}  // namespace
}  // namespace fi::core
