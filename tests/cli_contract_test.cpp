// The exit-code contract of the two shipped binaries, pinned by driving
// them as real subprocesses: 0 = success, 1 = run/input failure (bad
// file, failed node, rent leak), 2 = usage error. Scripts and CI recipes
// branch on these codes, so a change here is a breaking interface change
// — the same bar as a report-schema change.
//
// The binaries come from the build tree via FI_SIM_BIN /
// FI_ORCHESTRATE_BIN (CMake injects $<TARGET_FILE:...> and declares the
// dependency).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

#if !defined(FI_SIM_BIN) || !defined(FI_ORCHESTRATE_BIN) || \
    !defined(FI_CONFIG_DIR) || !defined(FI_PLAN_DIR)
#error "FI_SIM_BIN / FI_ORCHESTRATE_BIN / FI_CONFIG_DIR / FI_PLAN_DIR " \
       "must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string out;  ///< captured stdout
  std::string err;  ///< captured stderr
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Runs `argv_tail` under the given binary with stdout/stderr captured.
CommandResult run(const std::string& binary, const std::string& argv_tail) {
  // ctest runs every case as its own (possibly concurrent) process, so
  // capture files must be unique per process, not just per call.
  static int counter = 0;
  const std::string tag =
      std::to_string(::getpid()) + "_" + std::to_string(counter++);
  const fs::path out_path =
      fs::path(::testing::TempDir()) / ("fi_cli_out_" + tag + ".txt");
  const fs::path err_path =
      fs::path(::testing::TempDir()) / ("fi_cli_err_" + tag + ".txt");

  const std::string command = binary + " " + argv_tail + " > " +
                              out_path.string() + " 2> " + err_path.string();
  const int raw = std::system(command.c_str());
  CommandResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  result.out = slurp(out_path);
  result.err = slurp(err_path);
  fs::remove(out_path);
  fs::remove(err_path);
  return result;
}

CommandResult fi_sim(const std::string& argv_tail) {
  return run(FI_SIM_BIN, argv_tail);
}
CommandResult fi_orchestrate(const std::string& argv_tail) {
  return run(FI_ORCHESTRATE_BIN, argv_tail);
}

std::string smoke_cfg() {
  return (fs::path(FI_CONFIG_DIR) / "smoke.cfg").string();
}

fs::path write_temp(const std::string& name, const std::string& text) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  std::ofstream(path, std::ios::binary) << text;
  return path;
}

// ---------------------------------------------------------------------------
// fi_sim
// ---------------------------------------------------------------------------

TEST(FiSimCli, HelpExitsZeroAndDocumentsFlags) {
  const CommandResult result = fi_sim("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
  EXPECT_NE(result.out.find("--scenario"), std::string::npos);
  EXPECT_NE(result.out.find("--hash-state"), std::string::npos);
}

TEST(FiSimCli, UsageErrorsExitTwo) {
  // Unknown flag, named in the diagnostic.
  CommandResult result = fi_sim("--scenario x.cfg --frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.err.find("--frobnicate"), std::string::npos);

  // Missing operand.
  EXPECT_EQ(fi_sim("--scenario").exit_code, 2);
  // No input at all, and both inputs at once.
  EXPECT_EQ(fi_sim("").exit_code, 2);
  EXPECT_EQ(fi_sim("--scenario a.cfg --load b.fisnap").exit_code, 2);
  // Malformed --set (no '='), malformed numeric operand.
  EXPECT_EQ(fi_sim("--scenario a.cfg --set seed7").exit_code, 2);
  EXPECT_EQ(fi_sim("--scenario a.cfg --workers lots").exit_code, 2);
  // Checkpoint flags that contradict each other or lack --save.
  EXPECT_EQ(fi_sim("--scenario a.cfg --save-at 3").exit_code, 2);
  EXPECT_EQ(
      fi_sim("--scenario a.cfg --save s --save-at 3 --save-every 2")
          .exit_code,
      2);
  // Reserved zero (0 would silently mean "save at end").
  EXPECT_EQ(fi_sim("--scenario a.cfg --save s --save-at 0").exit_code, 2);
  // --set on a resumed run (the snapshot pins the spec).
  EXPECT_EQ(fi_sim("--load s.fisnap --set seed=1").exit_code, 2);
}

TEST(FiSimCli, InputFailuresExitOne) {
  EXPECT_EQ(fi_sim("--scenario /nonexistent/nope.cfg").exit_code, 1);

  const fs::path garbage =
      write_temp("fi_cli_garbage.fisnap", "not a snapshot");
  EXPECT_EQ(fi_sim("--load " + garbage.string()).exit_code, 1);
  fs::remove(garbage);

  // A save point past the end of the run must not look like success.
  const CommandResult result = fi_sim("--scenario " + smoke_cfg() +
                                      " --out /dev/null --save " +
                                      (fs::path(::testing::TempDir()) /
                                       "fi_cli_never.fisnap")
                                          .string() +
                                      " --save-at 10000");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.err.find("never fired"), std::string::npos);
}

TEST(FiSimCli, GoodRunExitsZero) {
  const CommandResult result =
      fi_sim("--scenario " + smoke_cfg() + " --out /dev/null --hash-state");
  EXPECT_EQ(result.exit_code, 0);
  // --hash-state prints exactly one 64-hex line on stdout.
  ASSERT_EQ(result.out.size(), 65u) << result.out;
  EXPECT_EQ(result.out.find_first_not_of("0123456789abcdef"), 64u);
  EXPECT_NE(result.err.find("rent conserved"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fi_orchestrate
// ---------------------------------------------------------------------------

TEST(FiOrchestrateCli, HelpExitsZeroAndDocumentsFlags) {
  const CommandResult result = fi_orchestrate("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
  EXPECT_NE(result.out.find("--plan"), std::string::npos);
  EXPECT_NE(result.out.find("--reuse-checkpoints"), std::string::npos);
}

TEST(FiOrchestrateCli, UsageErrorsExitTwo) {
  EXPECT_EQ(fi_orchestrate("").exit_code, 2);  // --plan is required
  EXPECT_EQ(fi_orchestrate("--frobnicate").exit_code, 2);
  // A parseable plan without --out-dir is still a usage error (unless
  // --validate).
  EXPECT_EQ(fi_orchestrate(std::string("--plan ") + FI_PLAN_DIR +
                           "/long_horizon.plan")
                .exit_code,
            2);
}

TEST(FiOrchestrateCli, ValidateChecksThePlanOnly) {
  const CommandResult good = fi_orchestrate(
      std::string("--plan ") + FI_PLAN_DIR + "/long_horizon.plan --validate");
  EXPECT_EQ(good.exit_code, 0);
  EXPECT_NE(good.out.find("plan ok: long_horizon (2 nodes)"),
            std::string::npos);

  const fs::path bad_plan = write_temp(
      "fi_cli_bad.plan", "node.0.name = a\nnode.0.parent = ghost\n");
  const CommandResult bad =
      fi_orchestrate("--plan " + bad_plan.string() + " --validate");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.err.find("ghost"), std::string::npos);
  fs::remove(bad_plan);

  EXPECT_EQ(fi_orchestrate("--plan /nonexistent.plan --validate").exit_code,
            1);
}

TEST(FiOrchestrateCli, TinyPlanRunsAndEmitsTable) {
  const fs::path plan = write_temp("fi_cli_tiny.plan",
                                   "plan.name = tiny\n"
                                   "node.0.name = genesis\n"
                                   "node.0.scenario = " +
                                       smoke_cfg() +
                                       "\n"
                                       "node.0.epochs = 2\n"
                                       "node.1.name = tail\n"
                                       "node.1.parent = genesis\n");
  const fs::path out_dir = fs::path(::testing::TempDir()) / "fi_cli_tiny_out";
  fs::remove_all(out_dir);

  const CommandResult result = fi_orchestrate(
      "--plan " + plan.string() + " --out-dir " + out_dir.string() +
      " --quiet --print-table");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.out.find("comparison table"), std::string::npos);
  EXPECT_TRUE(fs::exists(out_dir / "comparison.json"));
  EXPECT_TRUE(fs::exists(out_dir / "comparison.md"));
  EXPECT_TRUE(fs::exists(out_dir / "tail.report.json"));
  EXPECT_TRUE(fs::exists(out_dir / "genesis.fisnap"));

  // A failing node is exit 1, not 2 (the invocation itself was fine).
  const fs::path broken = write_temp(
      "fi_cli_broken.plan",
      "node.0.name = a\nnode.0.scenario = /nonexistent/x.cfg\n");
  const fs::path out2 = fs::path(::testing::TempDir()) / "fi_cli_broken_out";
  const CommandResult failed = fi_orchestrate(
      "--plan " + broken.string() + " --out-dir " + out2.string() +
      " --quiet");
  EXPECT_EQ(failed.exit_code, 1);
  EXPECT_NE(failed.err.find("FAILED"), std::string::npos);

  fs::remove(plan);
  fs::remove(broken);
  fs::remove_all(out_dir);
  fs::remove_all(out2);
}

}  // namespace
