#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "erasure/gf256.h"
#include "erasure/reed_solomon.h"
#include "erasure/segmenter.h"
#include "util/check.h"
#include "util/prng.h"

namespace fi::erasure {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

// ---------------------------------------------------------------------------
// GF(256) field axioms (property sweep over all elements)
// ---------------------------------------------------------------------------

TEST(GF256Field, MultiplicationCommutesAndAssociatesOnSample) {
  const GF256& gf = GF256::instance();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 20'000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(gf.mul(a, b), gf.mul(b, a));
    EXPECT_EQ(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
  }
}

TEST(GF256Field, InversesForAllNonzeroElements) {
  const GF256& gf = GF256::instance();
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf.inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), inv), 1);
    EXPECT_EQ(gf.div(1, static_cast<std::uint8_t>(a)), inv);
  }
}

TEST(GF256Field, IdentityAndZero) {
  const GF256& gf = GF256::instance();
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf.mul(static_cast<std::uint8_t>(a), 0), 0);
  }
  EXPECT_THROW((void)gf.inv(0), util::InvariantViolation);
  EXPECT_THROW((void)gf.div(1, 0), util::InvariantViolation);
}

TEST(GF256Field, GeneratorHasFullOrder) {
  const GF256& gf = GF256::instance();
  // 0x02 generates the multiplicative group: powers 0..254 are distinct.
  std::vector<bool> seen(256, false);
  for (unsigned e = 0; e < 255; ++e) {
    const std::uint8_t v = gf.exp(e);
    EXPECT_FALSE(seen[v]) << "duplicate power at e=" << e;
    seen[v] = true;
  }
}

TEST(GF256Field, PowMatchesRepeatedMultiplication) {
  const GF256& gf = GF256::instance();
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const unsigned p = static_cast<unsigned>(rng.uniform_below(10));
    std::uint8_t expected = 1;
    for (unsigned j = 0; j < p; ++j) expected = gf.mul(expected, a);
    EXPECT_EQ(gf.pow(a, p), expected);
  }
}

TEST(GF256Field, MulAddSliceMatchesScalarLoop) {
  const GF256& gf = GF256::instance();
  auto src = random_bytes(333, 3);
  auto dst = random_bytes(333, 4);
  auto expected = dst;
  const std::uint8_t c = 0x8e;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= gf.mul(c, src[i]);
  }
  gf.mul_add_slice(dst.data(), src.data(), src.size(), c);
  EXPECT_EQ(dst, expected);
}

// ---------------------------------------------------------------------------
// Reed–Solomon: parameterized sweep over (data, parity) shapes
// ---------------------------------------------------------------------------

class ReedSolomonParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ReedSolomonParam, AnyDataShardsSubsetReconstructs) {
  const auto [data_shards, parity_shards] = GetParam();
  const ReedSolomon rs(data_shards, parity_shards);
  const auto data = random_bytes(data_shards * 50, 10 + data_shards);
  const auto shards = split_into_shards(data, data_shards);
  auto encoded = rs.encode(shards);
  ASSERT_EQ(encoded.size(), static_cast<std::size_t>(data_shards + parity_shards));
  EXPECT_TRUE(rs.verify(encoded));

  // Erase `parity_shards` random shards (the maximum tolerable) and
  // reconstruct.
  util::Xoshiro256 rng(100 + data_shards * 7 + parity_shards);
  std::vector<std::optional<std::vector<std::uint8_t>>> survivors(
      encoded.begin(), encoded.end());
  int erased = 0;
  while (erased < parity_shards) {
    const std::size_t victim = rng.uniform_below(survivors.size());
    if (survivors[victim].has_value()) {
      survivors[victim] = std::nullopt;
      ++erased;
    }
  }
  auto result = rs.reconstruct(survivors);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(join_shards(result.value(), data.size()), data);
}

TEST_P(ReedSolomonParam, TooManyErasuresFail) {
  const auto [data_shards, parity_shards] = GetParam();
  const ReedSolomon rs(data_shards, parity_shards);
  const auto data = random_bytes(data_shards * 20, 20 + data_shards);
  auto encoded = rs.encode(split_into_shards(data, data_shards));
  std::vector<std::optional<std::vector<std::uint8_t>>> survivors(
      encoded.begin(), encoded.end());
  // Erase parity_shards + 1 shards: below the reconstruction threshold.
  for (int i = 0; i <= parity_shards; ++i) survivors[i] = std::nullopt;
  const auto result = rs.reconstruct(survivors);
  EXPECT_FALSE(result.is_ok());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReedSolomonParam,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(4, 2), std::make_tuple(5, 3),
                      std::make_tuple(10, 4), std::make_tuple(29, 51),
                      std::make_tuple(16, 16), std::make_tuple(100, 50)),
    [](const auto& shape) {
      return "d" + std::to_string(std::get<0>(shape.param)) + "_p" +
             std::to_string(std::get<1>(shape.param));
    });

TEST(ReedSolomon, CorruptedShardDetectedByVerify) {
  const ReedSolomon rs(4, 2);
  const auto data = random_bytes(400, 30);
  auto encoded = rs.encode(split_into_shards(data, 4));
  EXPECT_TRUE(rs.verify(encoded));
  encoded[5][3] ^= 1;
  EXPECT_FALSE(rs.verify(encoded));
}

TEST(ReedSolomon, ZeroParityIsPassthrough) {
  const ReedSolomon rs(3, 0);
  const auto data = random_bytes(300, 31);
  const auto shards = split_into_shards(data, 3);
  EXPECT_EQ(rs.encode(shards), shards);
}

TEST(ReedSolomon, SplitJoinRoundTripWithPadding) {
  for (std::size_t n : {1u, 9u, 10u, 11u, 100u}) {
    const auto data = random_bytes(n, 40 + n);
    const auto shards = split_into_shards(data, 3);
    EXPECT_EQ(join_shards(shards, n), data) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// §VI-C large-file segmentation
// ---------------------------------------------------------------------------

TEST(Segmenter, SmallFileNeedsNoSegmentation) {
  const LargeFileCodec codec(1000);
  EXPECT_FALSE(codec.needs_segmentation(1000));
  EXPECT_TRUE(codec.needs_segmentation(1001));
  EXPECT_EQ(codec.segment_count(500), 1u);
}

TEST(Segmenter, SegmentCountIsSmallestSufficientEven) {
  const LargeFileCodec codec(1000);
  EXPECT_EQ(codec.segment_count(1001), 4u);   // k/2=2 data segments of <=1000
  EXPECT_EQ(codec.segment_count(2000), 4u);
  EXPECT_EQ(codec.segment_count(2001), 6u);
  EXPECT_EQ(codec.segment_count(10'000), 20u);
}

TEST(Segmenter, SegmentsRespectSizeLimitAndValueRule) {
  const LargeFileCodec codec(1000);
  const auto data = random_bytes(3500, 50);
  const auto segmented = codec.segment(data, 800);
  EXPECT_EQ(segmented.segment_count, 8u);
  EXPECT_EQ(segmented.data_segments, 4u);
  ASSERT_EQ(segmented.segments.size(), 8u);
  for (const auto& seg : segmented.segments) {
    EXPECT_LE(seg.size, 1000u);
    // Each segment valued 2·value/k (Fig. §VI-C), rounded up: 2*800/8=200.
    EXPECT_EQ(seg.value, 200u);
  }
}

TEST(Segmenter, RecoversFromHalfSegmentLoss) {
  const LargeFileCodec codec(1000);
  const auto data = random_bytes(3700, 51);
  const auto segmented = codec.segment(data, 800);
  std::vector<std::optional<std::vector<std::uint8_t>>> survivors;
  survivors.reserve(segmented.segment_count);
  for (const auto& seg : segmented.segments) survivors.push_back(seg.data);
  // Lose exactly half the segments.
  util::Xoshiro256 rng(52);
  std::size_t killed = 0;
  while (killed < segmented.segment_count / 2) {
    const std::size_t victim = rng.uniform_below(survivors.size());
    if (survivors[victim].has_value()) {
      survivors[victim] = std::nullopt;
      ++killed;
    }
  }
  const auto recovered = codec.recover(segmented, survivors);
  ASSERT_TRUE(recovered.is_ok());
  EXPECT_EQ(recovered.value(), data);
}

TEST(Segmenter, MoreThanHalfLossFailsButCompensationCovers) {
  const LargeFileCodec codec(1000);
  const auto data = random_bytes(3500, 53);
  const TokenAmount value = 801;  // odd value: rounding must still cover
  const auto segmented = codec.segment(data, value);
  std::vector<std::optional<std::vector<std::uint8_t>>> survivors;
  for (const auto& seg : segmented.segments) survivors.push_back(seg.data);
  for (std::size_t i = 0; i <= segmented.segment_count / 2; ++i) {
    survivors[i] = std::nullopt;
  }
  EXPECT_FALSE(codec.recover(segmented, survivors).is_ok());
  // The paper's guarantee: losing the file means > k/2 segments lost, whose
  // summed per-segment values cover the full file value.
  const TokenAmount per_segment = segmented.segments.front().value;
  const TokenAmount lost_compensation =
      per_segment * (segmented.segment_count / 2 + 1);
  EXPECT_GE(lost_compensation, value);
}

TEST(Segmenter, SegmentsHaveDistinctRoots) {
  const LargeFileCodec codec(1000);
  const auto data = random_bytes(2500, 54);
  const auto segmented = codec.segment(data, 400);
  for (std::size_t i = 0; i < segmented.segments.size(); ++i) {
    for (std::size_t j = i + 1; j < segmented.segments.size(); ++j) {
      EXPECT_NE(segmented.segments[i].merkle_root,
                segmented.segments[j].merkle_root);
    }
  }
}

}  // namespace
}  // namespace fi::erasure
