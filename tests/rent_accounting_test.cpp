// Rent-accounting equivalence and conservation (§IV-A2).
//
// The engine distributes rent with an O(1)-per-cycle accumulator and lazy
// per-sector settlement. These tests pin that scheme to the specification
// it replaced — the two-sweep algorithm that, every rent period, paid each
// live (normal or disabled) sector floor(pool * capacity / total_capacity):
//
//  * a deterministic check that settled payouts equal the two-sweep shares
//    exactly (up to integer floor) in a hand-computable scenario;
//  * a randomized interleaving of register / disable / corrupt / add /
//    discard / settle asserting every provider is paid within rounding
//    dust of the two-sweep totals;
//  * an exact conservation audit: rent charged == rent settled + pool.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/network.h"
#include "ledger/account.h"
#include "util/prng.h"

namespace fi::core {
namespace {

Params rent_params() {
  Params p;
  p.min_capacity = 1024;
  p.min_value = 10;
  p.k = 2;
  p.cap_para = 10.0;
  p.gamma_deposit = 0.5;
  p.proof_cycle = 100;
  p.proof_due = 150;
  p.proof_deadline = 300;
  p.rent_period_cycles = 10;  // distribution every 1000 ticks
  p.avg_refresh = 1000.0;     // keep the refresh path out of the ledger
  p.verify_proofs = false;
  p.cr_size = 256;
  return p;
}

std::uint64_t abs_diff(TokenAmount a, TokenAmount b) {
  return a > b ? a - b : b - a;
}

TEST(RentAccounting, SettlementMatchesTwoSweepSharesExactly) {
  const Params params = rent_params();
  ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/3);
  net.set_auto_prove(true);

  const AccountId pa = ledger.create_account(1'000'000);
  const AccountId pb = ledger.create_account(1'000'000);
  const SectorId sa = net.sector_register(pa, 1 * 1024).value();
  const SectorId sb = net.sector_register(pb, 3 * 1024).value();

  const AccountId client = ledger.create_account(1'000'000);
  auto file = net.file_add(client, {1024, 10, {}});
  ASSERT_TRUE(file.is_ok());
  for (ReplicaIndex i = 0; i < net.allocations().replica_count(file.value());
       ++i) {
    const AllocEntry& e = net.allocations().entry(file.value(), i);
    ASSERT_TRUE(net.file_confirm(net.sectors().at(e.next).owner, file.value(),
                                 i, e.next, {}, std::nullopt)
                    .is_ok());
  }

  // Just before the first distribution: the pool holds every charge so far
  // and nothing has been credited yet.
  net.advance_to(params.rent_period_cycles * params.proof_cycle - 1);
  const TokenAmount charged = net.total_rent_charged();
  ASSERT_GT(charged, 0u);
  EXPECT_EQ(net.accrued_rent(sa), 0u);
  EXPECT_EQ(ledger.balance(net.rent_pool_account()), charged);

  // Two-sweep reference: capacity-proportional floor shares of the pool.
  const TokenAmount share_a = charged * 1 / 4;
  const TokenAmount share_b = charged * 3 / 4;

  net.advance_to(params.rent_period_cycles * params.proof_cycle + 1);
  EXPECT_LE(abs_diff(net.accrued_rent(sa), share_a), 1u);
  EXPECT_LE(abs_diff(net.accrued_rent(sb), share_b), 1u);

  const TokenAmount paid_a = net.settle_rent(sa);
  const TokenAmount paid_b = net.settle_rent(sb);
  EXPECT_LE(abs_diff(paid_a, share_a), 1u);
  EXPECT_LE(abs_diff(paid_b, share_b), 1u);
  // Settlement is idempotent until the next distribution.
  EXPECT_EQ(net.settle_rent(sa), 0u);
  EXPECT_EQ(net.settle_rent(sb), 0u);
  // Exact conservation at all times.
  EXPECT_EQ(net.total_rent_charged(),
            net.total_rent_paid() + ledger.balance(net.rent_pool_account()));
}

TEST(RentAccounting, CorruptionSettlesPriorAccrualThenFreezes) {
  const Params params = rent_params();
  ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/5);
  net.set_auto_prove(true);

  const AccountId pa = ledger.create_account(1'000'000);
  const AccountId pb = ledger.create_account(1'000'000);
  const SectorId sa = net.sector_register(pa, 2 * 1024).value();
  ASSERT_TRUE(net.sector_register(pb, 2 * 1024).is_ok());

  const AccountId client = ledger.create_account(1'000'000);
  auto file = net.file_add(client, {512, 10, {}});
  ASSERT_TRUE(file.is_ok());
  for (ReplicaIndex i = 0; i < net.allocations().replica_count(file.value());
       ++i) {
    const AllocEntry& e = net.allocations().entry(file.value(), i);
    ASSERT_TRUE(net.file_confirm(net.sectors().at(e.next).owner, file.value(),
                                 i, e.next, {}, std::nullopt)
                    .is_ok());
  }

  // Cross one distribution so sa has credited, unsettled rent.
  net.advance_to(params.rent_period_cycles * params.proof_cycle + 1);
  const TokenAmount accrued = net.accrued_rent(sa);
  const TokenAmount before = ledger.balance(pa);

  // Corruption pays the accrual (earned before the fault) and freezes it.
  net.corrupt_sector_now(sa);
  EXPECT_EQ(ledger.balance(pa), before + accrued);
  EXPECT_EQ(net.accrued_rent(sa), 0u);
  net.advance_to(2 * params.rent_period_cycles * params.proof_cycle + 1);
  EXPECT_EQ(net.accrued_rent(sa), 0u);
  EXPECT_EQ(net.settle_rent(sa), 0u);
}

TEST(RentAccounting, TinyPoolNonPowerOfTwoUnitsNeverOverdraws) {
  // Regression: the distribution must subtract its exact fixed-point
  // commitment from the undistributed balance. Subtracting only whole
  // credited tokens re-credits the sub-token remainder every cycle, and
  // with 1 token of rent against 3 capacity units the accumulator's
  // liability outgrows the pool until settlement overdraws and aborts.
  Params params = rent_params();
  params.k = 1;  // cp = 1 => rent of exactly 1 token per cycle
  ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/9);
  net.set_auto_prove(true);

  const AccountId provider = ledger.create_account(1'000'000);
  const SectorId s = net.sector_register(provider, 3 * 1024).value();

  const AccountId client = ledger.create_account(1'000'000);
  auto file = net.file_add(client, {512, 10, {}});
  ASSERT_TRUE(file.is_ok());
  const AllocEntry& e = net.allocations().entry(file.value(), 0);
  ASSERT_TRUE(net.file_confirm(provider, file.value(), 0, e.next, {},
                               std::nullopt)
                  .is_ok());

  // Let exactly one cycle's rent land, then bankrupt the client so the
  // file is discarded and no further rent flows.
  net.advance_to(net.now() + params.transfer_window(512) + params.proof_cycle);
  ASSERT_EQ(net.total_rent_charged(), 1u);
  ASSERT_TRUE(
      ledger.transfer(client, provider, ledger.balance(client)).is_ok());

  // Many distribution cycles over the stranded token: every settlement
  // must stay within the pool (the buggy carry-over threw here).
  const Time period =
      static_cast<Time>(params.rent_period_cycles) * params.proof_cycle;
  for (int k = 0; k < 50; ++k) {
    net.advance(period);
    EXPECT_LE(net.accrued_rent(s), ledger.balance(net.rent_pool_account()));
    (void)net.settle_rent(s);
  }
  net.settle_all_rent();
  EXPECT_EQ(net.total_rent_charged(),
            net.total_rent_paid() + ledger.balance(net.rent_pool_account()));
  EXPECT_LE(net.total_rent_paid(), 1u);
}

/// Randomized equivalence harness. Drives the engine through interleaved
/// register / disable / corrupt / add / discard / settle operations while an
/// oracle replays the old two-sweep distribution on the same state; at the
/// end every provider's actual rent income (ledger delta net of deposits,
/// gas, refunds and traffic fees) must match the oracle within rounding
/// dust.
class RentEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RentEquivalenceTest, LazyAccumulatorMatchesTwoSweep) {
  const std::uint64_t seed = GetParam();
  const Params params = rent_params();
  ledger::Ledger ledger;
  Network net(params, ledger, seed);
  net.set_auto_prove(true);
  util::Xoshiro256 rng(seed * 9176 + 11);

  constexpr int kProviders = 5;
  constexpr TokenAmount kInitial = 10'000'000;
  std::vector<AccountId> providers;
  // Non-rent ledger flows per provider, tracked exactly so the rent income
  // can be isolated from the final balances.
  std::unordered_map<AccountId, TokenAmount> outflow;  // deposits + gas
  std::unordered_map<AccountId, TokenAmount> inflow;   // refunds + traffic
  std::unordered_map<SectorId, AccountId> sector_owner;
  std::unordered_map<AccountId, TokenAmount> oracle_paid;
  for (int i = 0; i < kProviders; ++i) {
    providers.push_back(ledger.create_account(kInitial));
    outflow[providers.back()] = 0;
    inflow[providers.back()] = 0;
    oracle_paid[providers.back()] = 0;
  }
  net.subscribe([&](const Event& e) {
    if (const auto* removed = std::get_if<SectorRemoved>(&e)) {
      inflow[sector_owner.at(removed->sector)] += removed->refunded;
    }
  });

  const AccountId client = ledger.create_account(100'000'000);
  std::vector<FileId> files;

  const auto register_sector = [&](AccountId provider, ByteCount capacity) {
    auto id = net.sector_register(provider, capacity);
    ASSERT_TRUE(id.is_ok()) << id.status().to_string();
    sector_owner[id.value()] = provider;
    outflow[provider] +=
        params.sector_deposit(capacity) + params.gas_per_task;
  };

  const auto add_file = [&] {
    const ByteCount size = 200 + rng.uniform_below(2800);
    const TokenAmount value = 10 * (1 + rng.uniform_below(2));
    auto id = net.file_add(client, {size, value, {}});
    if (!id.is_ok()) return;  // no space: acceptable under churn
    for (ReplicaIndex i = 0; i < net.allocations().replica_count(id.value());
         ++i) {
      const AllocEntry& e = net.allocations().entry(id.value(), i);
      const ProviderId owner = net.sectors().at(e.next).owner;
      if (net.file_confirm(owner, id.value(), i, e.next, {}, std::nullopt)
              .is_ok()) {
        inflow[owner] += params.traffic_fee(size);
      }
    }
    files.push_back(id.value());
  };

  for (int i = 0; i < kProviders; ++i) {
    register_sector(providers[i], (1 + rng.uniform_below(4)) * 1024);
  }
  for (int i = 0; i < 4; ++i) add_file();

  const Time period =
      static_cast<Time>(params.rent_period_cycles) * params.proof_cycle;
  constexpr int kPeriods = 6;
  for (int k = 1; k <= kPeriods; ++k) {
    // Random churn strictly inside the period.
    for (int op = 0; op < 6; ++op) {
      switch (rng.uniform_below(6)) {
        case 0:
          add_file();
          break;
        case 1: {  // discard a live file
          if (files.empty()) break;
          const FileId f = files[rng.uniform_below(files.size())];
          if (net.file_exists(f)) (void)net.file_discard(client, f);
          break;
        }
        case 2: {  // register another sector
          const AccountId p = providers[rng.uniform_below(providers.size())];
          register_sector(p, (1 + rng.uniform_below(4)) * 1024);
          break;
        }
        case 3: {  // disable a random normal sector
          const SectorId s = rng.uniform_below(net.sectors().count());
          if (net.sectors().at(s).state == SectorState::normal) {
            if (net.sector_disable(sector_owner.at(s), s).is_ok()) {
              outflow[sector_owner.at(s)] += params.gas_per_task;
            }
          }
          break;
        }
        case 4: {  // corrupt a random normal sector
          const SectorId s = rng.uniform_below(net.sectors().count());
          if (net.sectors().at(s).state == SectorState::normal) {
            net.corrupt_sector_now(s);
          }
          break;
        }
        case 5: {  // a provider polls (and settles) its rent balance
          const SectorId s = rng.uniform_below(net.sectors().count());
          (void)net.settle_rent(s);
          break;
        }
      }
      net.advance(20 + rng.uniform_below(50));
      // Stay clear of the period boundary: the oracle snapshot below must
      // observe the exact pre-distribution state.
      if (net.now() >= static_cast<Time>(k) * period - 2) break;
    }

    // Oracle: replay the two-sweep distribution on the pre-distribution
    // state (tasks at the boundary run after the distribution task, so the
    // state at period-end minus one tick is what the sweep would see).
    net.advance_to(static_cast<Time>(k) * period - 1);
    TokenAmount oracle_paid_total = 0;
    for (auto& [provider, paid] : oracle_paid) oracle_paid_total += paid;
    const TokenAmount oracle_pool =
        net.total_rent_charged() - oracle_paid_total;
    ByteCount total_cap = 0;
    for (SectorId s = 0; s < net.sectors().count(); ++s) {
      const Sector& sec = net.sectors().at(s);
      if (sec.state == SectorState::normal ||
          sec.state == SectorState::disabled) {
        total_cap += sec.capacity;
      }
    }
    if (oracle_pool > 0 && total_cap > 0) {
      for (SectorId s = 0; s < net.sectors().count(); ++s) {
        const Sector& sec = net.sectors().at(s);
        if (sec.state != SectorState::normal &&
            sec.state != SectorState::disabled) {
          continue;
        }
        oracle_paid[sec.owner] += oracle_pool * sec.capacity / total_cap;
      }
    }
    net.advance_to(static_cast<Time>(k) * period + 1);
  }

  // Flush all outstanding accruals, then audit.
  net.settle_all_rent();

  // Exact conservation: every charged token is either settled or pooled.
  EXPECT_EQ(net.total_rent_charged(),
            net.total_rent_paid() + ledger.balance(net.rent_pool_account()));

  std::size_t sectors_total = sector_owner.size();
  for (const AccountId provider : providers) {
    const TokenAmount actual = ledger.balance(provider) + outflow[provider] -
                               inflow[provider] - kInitial;
    // Dust bound: the oracle floors once per sector per distribution; the
    // accumulator floors once per paying settlement. Both are < 1 token.
    const std::uint64_t dust = (kPeriods + 2) * (sectors_total + 1);
    EXPECT_LE(abs_diff(actual, oracle_paid[provider]), dust)
        << "provider " << provider << " actual=" << actual
        << " oracle=" << oracle_paid[provider] << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RentEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace fi::core
