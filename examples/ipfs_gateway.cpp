// IPFS gateway (§VI-F): "the hashes and locations of files are all stored
// in blockchain ... anyone can address files stored in FileInsurer through
// IPFS paths. The retrieval of files can be also realized through BitSwap."
//
// This example wires the substrates together the way the paper describes:
//   1. a file is chunked into a Merkle DAG (content-addressed blocks),
//   2. provider nodes that store the file announce it in the DHT,
//   3. a gateway node resolves providers via a Kademlia lookup and fetches
//      the DAG over BitSwap on the simulated network,
//   4. the reassembled bytes are verified against the on-chain Merkle root.

#include <cstdio>
#include <memory>
#include <vector>

#include "crypto/merkle.h"
#include "ipfs/bitswap.h"
#include "ipfs/content_store.h"
#include "ipfs/dht.h"
#include "ipfs/merkle_dag.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "util/prng.h"

using namespace fi;

namespace {

struct IpfsNode {
  ipfs::ContentStore store;
  std::unique_ptr<ipfs::BitswapEngine> engine;
  sim::NodeId id = 0;
};

}  // namespace

int main() {
  std::printf("== IPFS gateway over FileInsurer substrates ==\n\n");

  sim::EventQueue queue;
  sim::Network network(queue, /*seed=*/1);
  network.set_default_link({.base_latency = 3, .ticks_per_kib = 1});
  ipfs::Dht dht(/*k=*/4);

  // Eight storage-provider nodes plus one gateway.
  std::vector<std::unique_ptr<IpfsNode>> nodes;
  for (int i = 0; i < 9; ++i) {
    auto node = std::make_unique<IpfsNode>();
    IpfsNode* raw = node.get();
    raw->id = network.add_node(
        [raw](const sim::Message& m) { raw->engine->handle(m); });
    raw->engine =
        std::make_unique<ipfs::BitswapEngine>(network, raw->id, raw->store);
    dht.join(raw->id);
    nodes.push_back(std::move(node));
  }
  IpfsNode& gateway = *nodes.back();
  std::printf("9 nodes joined the DHT (k-bucket size 4)\n");

  // A client file: ~40 KiB of pseudo-content.
  util::Xoshiro256 rng(7);
  std::vector<std::uint8_t> file(40 * 1024);
  for (auto& b : file) b = static_cast<std::uint8_t>(rng());
  const crypto::Hash256 on_chain_root = crypto::merkle_root_of_data(file);

  // Three providers store the file (FileInsurer's replicas) and announce
  // the root CID in the DHT.
  const ipfs::DagParams dag_params{.chunk_size = 2048, .fanout = 8};
  ipfs::Cid root_cid;
  for (int p : {1, 4, 6}) {
    root_cid = ipfs::dag_put_file(nodes[p]->store, file, dag_params);
    dht.provide(nodes[p]->id, root_cid);
  }
  std::printf("file of %zu bytes chunked into %zu blocks, root %s\n",
              file.size(), nodes[1]->store.block_count(),
              root_cid.to_string().c_str());
  std::printf("providers 1, 4, 6 announced the CID in the DHT\n");

  // The gateway resolves providers and fetches the DAG via BitSwap.
  const auto lookup = dht.find_providers(gateway.id, root_cid);
  std::printf("\nDHT lookup from the gateway: %zu providers found in %zu "
              "hops\n",
              lookup.providers.size(), lookup.hops);
  if (lookup.providers.empty()) return 1;

  bool complete = false;
  gateway.engine->fetch_dag(lookup.providers.front(), root_cid,
                            [&](const ipfs::Cid&, bool ok) { complete = ok; });
  queue.run_all();

  std::printf("BitSwap transfer %s at t=%llu (%llu messages, %llu bytes "
              "received)\n",
              complete ? "complete" : "FAILED",
              static_cast<unsigned long long>(queue.now()),
              static_cast<unsigned long long>(network.messages_delivered()),
              static_cast<unsigned long long>(
                  gateway.engine->bytes_received_from(
                      lookup.providers.front())));

  // Verify content-addressing end to end against the chain's Merkle root.
  const auto reassembled = ipfs::dag_get_file(gateway.store, root_cid);
  if (!reassembled.is_ok()) {
    std::printf("reassembly failed: %s\n",
                reassembled.status().to_string().c_str());
    return 1;
  }
  const bool match =
      crypto::merkle_root_of_data(reassembled.value()) == on_chain_root;
  std::printf("reassembled %zu bytes; on-chain Merkle root match: %s\n",
              reassembled.value().size(), match ? "YES" : "NO");

  // Traffic-fee accounting per §IV-A1: the provider's BitSwap ledger knows
  // exactly how many bytes it served.
  const auto supplier = lookup.providers.front();
  for (const auto& node : nodes) {
    if (node->id == supplier) {
      std::printf("supplier node %llu served %llu bytes -> retrieval "
                  "payment due at %llu tokens/KiB\n",
                  static_cast<unsigned long long>(supplier),
                  static_cast<unsigned long long>(
                      node->engine->bytes_sent_to(gateway.id)),
                  1ull);
    }
  }
  return match && complete ? 0 : 1;
}
