// Provider economics: the full financial lifecycle of a storage provider —
// the deposit burden the paper works hard to minimize (§IV-B), rent income
// (§IV-A2), punishment for sloppiness, and the safe exit path
// (Sector_Disable -> drain -> deposit refund).

#include <cstdio>
#include <vector>

#include "analysis/bounds.h"
#include "core/network.h"
#include "ledger/account.h"

using namespace fi;
using namespace fi::core;

int main() {
  Params params;
  params.min_capacity = 32 * 1024;
  params.min_value = 10;
  params.k = 2;
  params.cap_para = 20.0;
  params.gamma_deposit = 0.5;
  params.punish_bp = 1000;  // 10% slash per late-proof offence
  params.proof_cycle = 50;
  params.proof_due = 75;
  params.proof_deadline = 300;
  params.avg_refresh = 4.0;
  params.verify_proofs = false;

  ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/404);
  net.set_auto_prove(true);

  std::printf("== provider economics ==\n\n");

  // The paper's selling point: a deposit ratio of fractions of a percent
  // suffices at scale. Print what Theorem 4 demands at headline parameters.
  std::printf("Theorem 4 deposit ratio at paper scale (k=20, Ns=1e6, "
              "capPara=1e3, lambda=0.5): %.4f\n",
              analysis::theorem4_deposit_ratio_bound(0.5, 20, 1e6, 1e3));
  std::printf("-> a provider pledges ~0.46%% of the value it helps secure.\n\n");

  // Our protagonist and five peers.
  const AccountId hero = ledger.create_account(100'000);
  std::vector<AccountId> peers;
  std::vector<SectorId> peer_sectors;
  for (int i = 0; i < 5; ++i) {
    peers.push_back(ledger.create_account(100'000));
    peer_sectors.push_back(
        net.sector_register(peers.back(), params.min_capacity).value());
  }
  const TokenAmount hero_start = ledger.balance(hero);
  const SectorId hero_sector =
      net.sector_register(hero, params.min_capacity).value();
  std::printf("hero registers a 32 KiB sector: deposit %llu locked "
              "(balance %llu -> %llu)\n",
              static_cast<unsigned long long>(
                  net.deposits().remaining(hero_sector)),
              static_cast<unsigned long long>(hero_start),
              static_cast<unsigned long long>(ledger.balance(hero)));

  // Clients fill the network to ~half its capacity — the paper's
  // redundant-capacity assumption (§V-A), which is what keeps refreshes
  // (and therefore sector draining) collision-free.
  const AccountId client = ledger.create_account(10'000'000);
  int accepted = 0;
  for (int i = 0; i < 45; ++i) {
    auto f = net.file_add(client, {1024, 10, {}});
    if (!f.is_ok()) break;
    for (ReplicaIndex r = 0; r < net.allocations().replica_count(f.value());
         ++r) {
      const AllocEntry& e = net.allocations().entry(f.value(), r);
      (void)net.file_confirm(net.sectors().at(e.next).owner, f.value(), r,
                             e.next, {}, std::nullopt);
    }
    ++accepted;
  }
  std::printf("clients stored %d files across the 6-sector fleet\n\n",
              accepted);

  // Earn rent for five rent periods; confirm refresh handoffs as they come.
  net.subscribe([&](const Event& event) {
    if (const auto* req = std::get_if<ReplicaTransferRequested>(&event)) {
      if (req->from != kNoSector) {
        (void)net.file_confirm(net.sectors().at(req->to).owner, req->file,
                               req->index, req->to, {}, std::nullopt);
      }
    }
  });
  const TokenAmount before_rent = ledger.balance(hero);
  const Time five_periods =
      5 * static_cast<Time>(params.rent_period_cycles) * params.proof_cycle;
  net.advance_to(five_periods + 1);
  std::printf("after 5 rent periods: hero earned %lld tokens of rent "
              "(capacity share = 1/6 of the pool)\n",
              static_cast<long long>(ledger.balance(hero)) -
                  static_cast<long long>(before_rent));

  // A lapse: the hero's disk goes dark past ProofDue (slash territory) but
  // comes back before ProofDeadline (confiscation).
  std::printf("\nhero's disk goes dark for ~2.5 proof cycles...\n");
  const TokenAmount before_punish = net.deposits().remaining(hero_sector);
  net.corrupt_sector_physical(hero_sector);
  net.advance_to(net.now() + params.proof_cycle * 5 / 2);
  net.restore_sector_physical(hero_sector);
  net.advance_to(net.now() + params.proof_cycle);
  std::printf("  deposit %llu -> %llu (late-proof slashes, 10%% each), "
              "sector %s\n",
              static_cast<unsigned long long>(before_punish),
              static_cast<unsigned long long>(
                  net.deposits().remaining(hero_sector)),
              to_string(net.sectors().at(hero_sector).state));

  // Safe exit: disable, wait for refreshes to drain the sector, refund.
  std::printf("\nhero disables the sector and waits for the refresh "
              "mechanism to drain it...\n");
  (void)net.sector_disable(hero, hero_sector);
  Time waited = 0;
  while (net.sectors().at(hero_sector).state == SectorState::disabled &&
         waited < 400 * params.proof_cycle) {
    net.advance_to(net.now() + params.proof_cycle);
    waited += params.proof_cycle;
  }
  const bool exited =
      net.sectors().at(hero_sector).state == SectorState::removed;
  std::printf("  sector state after %llu cycles: %s\n",
              static_cast<unsigned long long>(waited / params.proof_cycle),
              to_string(net.sectors().at(hero_sector).state));
  std::printf("\n== closing balance ==\n");
  std::printf("  start %llu -> end %llu (%+lld): rent income minus "
              "punishments%s\n",
              static_cast<unsigned long long>(hero_start),
              static_cast<unsigned long long>(ledger.balance(hero)),
              static_cast<long long>(ledger.balance(hero)) -
                  static_cast<long long>(hero_start),
              exited ? ", deposit refunded in full" : " (deposit still locked)");
  return 0;
}
