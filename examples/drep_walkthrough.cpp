// Dynamic Replication walkthrough — reproduces Fig. 2 step by step with
// real PoRep seals.
//
//   (a) a freshly registered sector is filled with six Capacity Replicas;
//   (b) files displace CRs (two remain);
//   (c) when files shrink, dropped CRs are REGENERATED — byte-identical,
//       because the raw data is zeros and the seal key derives from
//       (provider, sector, index); no new SNARK verification is needed.

#include <cstdio>

#include "core/drep.h"
#include "crypto/porep.h"
#include "crypto/post.h"

using namespace fi;
using namespace fi::core;

namespace {

void show(const char* label, DRepManager& drep) {
  std::printf("%s\n", label);
  std::printf("  files: %5llu bytes | CRs:",
              static_cast<unsigned long long>(drep.used_by_files()));
  for (std::uint64_t idx : drep.present_cr_indices()) {
    std::printf(" CR%llu", static_cast<unsigned long long>(idx));
  }
  std::printf(" | unsealed %llu bytes | invariant(unsealed < CR size): %s\n\n",
              static_cast<unsigned long long>(drep.unsealed_space()),
              drep.invariant_holds() ? "holds" : "VIOLATED");
}

}  // namespace

int main() {
  constexpr ByteCount kCr = 1024;
  constexpr ByteCount kCapacity = 6 * kCr;
  const crypto::SealParams seal{.work = 1, .challenges = 2};

  std::printf("== DRep walkthrough (Fig. 2), sector of 6 x 1 KiB CRs ==\n\n");
  DRepManager drep(/*provider=*/7, /*sector=*/3, kCapacity, kCr, seal,
                   /*materialize=*/true);

  // (a) Initially the sector contains six capacity replicas.
  show("(a) freshly registered sector", drep);

  // Keep CR2's bytes and commitment: it is dropped in (b) and regenerated
  // in (c).
  const crypto::Hash256 cr2_commitment = drep.cr_commitment(2);
  const std::vector<std::uint8_t> cr2_bytes = drep.cr_bytes(2);
  std::printf("    CommR(CR2) = %s (verified once at registration)\n\n",
              cr2_commitment.short_hex().c_str());

  // (b) Files fill most of the space; CRs are dropped highest-index first.
  drep.add_replica(replica_nonce(101, 0), 2600);
  drep.add_replica(replica_nonce(102, 0), 1400);
  show("(b) after storing files f101 (2600 B) and f102 (1400 B)", drep);

  // (c) A file leaves; the freed space refills with regenerated CRs.
  drep.remove_replica(replica_nonce(102, 0));
  show("(c) after f102 is discarded", drep);

  std::printf("regenerations performed: %llu\n",
              static_cast<unsigned long long>(drep.regeneration_count()));
  const bool identical = drep.cr_bytes(2) == cr2_bytes &&
                         drep.cr_commitment(2) == cr2_commitment;
  std::printf("CR2 after regeneration: %s — %s\n",
              drep.cr_commitment(2).short_hex().c_str(),
              identical ? "byte-identical, no re-verification needed"
                        : "MISMATCH");

  // The point of CRs: free space is *provable*. A WindowPoSt challenge over
  // a CR can only be answered by someone holding the sealed bytes.
  const auto& cr0 = drep.cr_bytes(0);
  const crypto::ReplicaId cr0_id{7, 3, crypto::kCapacityNonceBit | 0};
  const auto beacon = crypto::hash_u64s("walkthrough", {42});
  const auto proof = crypto::prove_window(cr0, cr0_id, beacon, 42, 2);
  const bool ok =
      crypto::verify_window(proof, drep.cr_commitment(0), beacon, 2);
  std::printf("\nWindowPoSt over CR0 with a fresh beacon: %s — free space "
              "is provably available.\n",
              ok ? "verified" : "FAILED");
  return ok && identical ? 0 : 1;
}
