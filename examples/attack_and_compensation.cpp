// Adversarial storage attack: half of the network's capacity is destroyed
// at once (the paper's headline scenario, §V-B3/§V-B4).
//
// The same catastrophe is run against the full FileInsurer protocol and the
// Filecoin-style baseline, side by side:
//   * FileInsurer: randomized, refreshed placement keeps losses near λ^k,
//     and confiscated deposits pay every loss back in full;
//   * Filecoin model: deal-time placement loses at the same rate, but the
//     slashed pledges are burnt — owners see only the deal collateral.
//
// The FileInsurer side is a declarative scenario spec (the same workload
// as configs/attack_half.cfg) executed by the scenario engine.

#include <cstdio>

#include "baselines/filecoin_model.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

using namespace fi;
using namespace fi::scenario;

int main() {
  std::printf("== half the storage collapses: FileInsurer vs Filecoin ==\n");

  // ---- FileInsurer, full protocol via the scenario engine ----------------
  ScenarioSpec spec;
  spec.name = "attack_half";
  spec.seed = 31337;
  spec.sectors = 120;
  spec.sector_units = 1;
  spec.initial_files = 900;
  spec.file_size_min = 1024;
  spec.file_size_max = 1024;
  spec.file_value = 100;
  spec.params.min_capacity = 32 * 1024;
  spec.params.min_value = 100;
  spec.params.k = 4;
  spec.params.cap_para = 30.0;
  spec.params.gamma_deposit = 0.08;
  spec.phases.push_back(PhaseSpec::make_corrupt_burst(0.5, 2));

  ScenarioRunner runner(spec);
  const MetricsReport report = runner.run();
  const auto stored = report.initial_files;
  const TokenAmount stored_value =
      static_cast<TokenAmount>(stored) * spec.file_value;
  std::printf("\nFileInsurer: %llu files stored (value %llu), k=%u, "
              "gamma_deposit=%.3f\n",
              static_cast<unsigned long long>(stored),
              static_cast<unsigned long long>(stored_value), spec.params.k,
              spec.params.gamma_deposit);

  const auto& stats = report.totals;
  std::printf("  after the attack:\n");
  std::printf("    sectors corrupted        : %llu of %llu\n",
              static_cast<unsigned long long>(stats.sectors_corrupted),
              static_cast<unsigned long long>(spec.sectors));
  std::printf("    files lost               : %llu of %llu  (%.3f%%; "
              "lambda^k = %.3f%%)\n",
              static_cast<unsigned long long>(stats.files_lost),
              static_cast<unsigned long long>(stored),
              100.0 * static_cast<double>(stats.files_lost) /
                  static_cast<double>(stored),
              100.0 * 0.0625);
  std::printf("    value lost / compensated : %llu / %llu  (coverage %.0f%%, "
              "outstanding %llu)\n",
              static_cast<unsigned long long>(stats.value_lost),
              static_cast<unsigned long long>(stats.value_compensated),
              stats.value_lost == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(stats.value_compensated) /
                        static_cast<double>(stats.value_lost),
              static_cast<unsigned long long>(
                  report.outstanding_liabilities));
  std::printf("    compensation pool left   : %llu\n",
              static_cast<unsigned long long>(report.compensation_pool));

  // ---- Filecoin baseline, same catastrophe ------------------------------
  baselines::FilecoinConfig fc;
  fc.replicas = spec.params.k;
  baselines::FilecoinModel filecoin(fc);
  std::vector<baselines::WorkloadFile> workload(
      static_cast<std::size_t>(stored),
      baselines::WorkloadFile{1024, spec.file_value});
  filecoin.setup(static_cast<std::uint32_t>(spec.sectors), workload,
                 /*seed=*/31337);
  const auto outcome = filecoin.corrupt_random(0.5);
  std::printf("\nFilecoin baseline (same %llu files, %u replicas, same "
              "lambda=0.5):\n",
              static_cast<unsigned long long>(stored), fc.replicas);
  std::printf("    value lost               : %.1f%% of stored value\n",
              100.0 * outcome.lost_value_fraction);
  std::printf("    compensated              : %.0f%% of the loss "
              "(deal collateral only; pledges are burnt)\n",
              100.0 * outcome.compensated_fraction);

  std::printf("\nThe insurance difference: identical losses, but FileInsurer "
              "owners are made whole\nwhile Filecoin owners absorb ~%.0f%% of "
              "the damage.\n",
              100.0 * (1.0 - outcome.compensated_fraction));
  return 0;
}
