// Adversarial storage attack: half of the network's capacity is destroyed
// at once (the paper's headline scenario, §V-B3/§V-B4).
//
// The same catastrophe is run against the full FileInsurer protocol and the
// Filecoin-style baseline, side by side:
//   * FileInsurer: randomized, refreshed placement keeps losses near λ^k,
//     and confiscated deposits pay every loss back in full;
//   * Filecoin model: deal-time placement loses at the same rate, but the
//     slashed pledges are burnt — owners see only the deal collateral.

#include <cstdio>
#include <vector>

#include "baselines/filecoin_model.h"
#include "core/network.h"
#include "ledger/account.h"
#include "util/prng.h"

using namespace fi;
using namespace fi::core;

int main() {
  std::printf("== half the storage collapses: FileInsurer vs Filecoin ==\n");

  // ---- FileInsurer, full protocol ---------------------------------------
  Params params;
  params.min_capacity = 32 * 1024;
  params.min_value = 100;
  params.k = 4;
  params.cap_para = 30.0;
  params.gamma_deposit = 0.08;
  params.verify_proofs = false;

  ledger::Ledger ledger;
  Network net(params, ledger, /*seed=*/31337);
  net.set_auto_prove(true);

  constexpr int kSectors = 120;
  const AccountId provider = ledger.create_account(1'000'000'000ull);
  std::vector<SectorId> sectors;
  for (int s = 0; s < kSectors; ++s) {
    sectors.push_back(
        net.sector_register(provider, params.min_capacity).value());
  }
  const AccountId client = ledger.create_account(1'000'000'000ull);

  int accepted = 0;
  for (int i = 0; i < 900; ++i) {
    auto f = net.file_add(client, {1024, params.min_value, {}});
    if (!f.is_ok()) break;
    for (ReplicaIndex r = 0; r < net.allocations().replica_count(f.value());
         ++r) {
      const AllocEntry& e = net.allocations().entry(f.value(), r);
      (void)net.file_confirm(provider, f.value(), r, e.next, {},
                             std::nullopt);
    }
    ++accepted;
  }
  net.advance_to(10);
  const TokenAmount stored_value =
      static_cast<TokenAmount>(accepted) * params.min_value;
  std::printf("\nFileInsurer: %d files stored (value %llu), k=%u, "
              "gamma_deposit=%.3f\n",
              accepted, static_cast<unsigned long long>(stored_value),
              params.k, params.gamma_deposit);

  // The adversary instantly corrupts a random half of the fleet.
  util::Xoshiro256 rng(5);
  std::vector<int> order(kSectors);
  for (int i = 0; i < kSectors; ++i) order[i] = i;
  for (int i = 0; i + 1 < kSectors; ++i) {
    std::swap(order[i],
              order[i + static_cast<int>(rng.uniform_below(kSectors - i))]);
  }
  for (int i = 0; i < kSectors / 2; ++i) {
    net.corrupt_sector_now(sectors[order[i]]);
  }
  net.advance_to(net.now() + 2 * params.proof_cycle);

  const auto& stats = net.stats();
  std::printf("  after the attack:\n");
  std::printf("    sectors corrupted        : %llu of %d\n",
              static_cast<unsigned long long>(stats.sectors_corrupted),
              kSectors);
  std::printf("    files lost               : %llu of %d  (%.3f%%; "
              "lambda^k = %.3f%%)\n",
              static_cast<unsigned long long>(stats.files_lost), accepted,
              100.0 * static_cast<double>(stats.files_lost) / accepted,
              100.0 * 0.0625);
  std::printf("    value lost / compensated : %llu / %llu  (coverage %.0f%%, "
              "outstanding %llu)\n",
              static_cast<unsigned long long>(stats.value_lost),
              static_cast<unsigned long long>(stats.value_compensated),
              stats.value_lost == 0
                  ? 100.0
                  : 100.0 * static_cast<double>(stats.value_compensated) /
                        static_cast<double>(stats.value_lost),
              static_cast<unsigned long long>(
                  net.deposits().outstanding_liabilities()));
  std::printf("    compensation pool left   : %llu\n",
              static_cast<unsigned long long>(
                  net.deposits().pool_balance()));

  // ---- Filecoin baseline, same catastrophe ------------------------------
  baselines::FilecoinConfig fc;
  fc.replicas = params.k;
  baselines::FilecoinModel filecoin(fc);
  std::vector<baselines::WorkloadFile> workload(
      static_cast<std::size_t>(accepted),
      baselines::WorkloadFile{1024, params.min_value});
  filecoin.setup(kSectors, workload, /*seed=*/31337);
  const auto outcome = filecoin.corrupt_random(0.5);
  std::printf("\nFilecoin baseline (same %d files, %u replicas, same "
              "lambda=0.5):\n",
              accepted, fc.replicas);
  std::printf("    value lost               : %.1f%% of stored value\n",
              100.0 * outcome.lost_value_fraction);
  std::printf("    compensated              : %.0f%% of the loss "
              "(deal collateral only; pledges are burnt)\n",
              100.0 * outcome.compensated_fraction);

  std::printf("\nThe insurance difference: identical losses, but FileInsurer "
              "owners are made whole\nwhile Filecoin owners absorb ~%.0f%% of "
              "the damage.\n",
              100.0 * (1.0 - outcome.compensated_fraction));
  return 0;
}
