// Quickstart: the full life of one file on a FileInsurer network, printed
// as the Fig. 3 protocol timeline.
//
//   * four providers register sectors (pledging deposits),
//   * a client stores a file (File_Add -> transfers -> File_Confirm ->
//     Auto_CheckAlloc),
//   * providers keep proving storage (File_Prove / Auto_CheckProof),
//   * the network refreshes replica locations (Auto_Refresh /
//     Auto_CheckRefresh),
//   * the client retrieves the file and finally discards it.

#include <cstdio>
#include <string>

#include "core/agents.h"

using namespace fi;
using namespace fi::core;

namespace {

const char* event_name(const Event& event) {
  if (std::get_if<FileStored>(&event)) return "FileStored";
  if (std::get_if<UploadFailed>(&event)) return "UploadFailed";
  if (std::get_if<FileDiscarded>(&event)) return "FileDiscarded";
  if (std::get_if<FileLost>(&event)) return "FileLost";
  if (std::get_if<SectorCorrupted>(&event)) return "SectorCorrupted";
  if (std::get_if<SectorRemoved>(&event)) return "SectorRemoved";
  if (std::get_if<ProviderPunished>(&event)) return "ProviderPunished";
  if (std::get_if<ReplicaTransferRequested>(&event)) return "TransferRequested";
  if (std::get_if<ReplicaActivated>(&event)) return "ReplicaActivated";
  if (std::get_if<ReplicaReleased>(&event)) return "ReplicaReleased";
  if (std::get_if<RefreshSkipped>(&event)) return "RefreshSkipped";
  if (std::get_if<RentDistributed>(&event)) return "RentDistributed";
  if (std::get_if<RetrievalRequested>(&event)) return "RetrievalRequested";
  return "?";
}

}  // namespace

int main() {
  Params params;
  params.min_capacity = 4096;
  params.min_value = 10;
  params.k = 2;
  params.cap_para = 10.0;
  params.gamma_deposit = 0.05;
  params.proof_cycle = 50;
  params.proof_due = 75;
  params.proof_deadline = 150;
  params.avg_refresh = 3.0;  // refresh often, so the timeline shows it
  params.delay_per_kib = 5;
  params.min_transfer_window = 5;
  params.verify_proofs = true;  // real PoRep + WindowPoSt
  params.seal = {.work = 1, .challenges = 2};
  params.cr_size = 1024;

  Simulation sim(params, /*seed=*/2026);
  std::printf("== FileInsurer quickstart ==\n\n");

  // A live timeline of protocol events (the Fig. 3 picture).
  sim.network().subscribe([&](const Event& event) {
    std::printf("  [t=%4llu] %-18s",
                static_cast<unsigned long long>(sim.network().now()),
                event_name(event));
    if (const auto* req = std::get_if<ReplicaTransferRequested>(&event)) {
      if (req->from == kNoSector) {
        std::printf(" replica %u: client -> sector %llu (deadline t=%llu)",
                    req->index, static_cast<unsigned long long>(req->to),
                    static_cast<unsigned long long>(req->deadline));
      } else {
        std::printf(" replica %u: sector %llu -> sector %llu (refresh)",
                    req->index, static_cast<unsigned long long>(req->from),
                    static_cast<unsigned long long>(req->to));
      }
    } else if (const auto* act = std::get_if<ReplicaActivated>(&event)) {
      std::printf(" replica %u live in sector %llu", act->index,
                  static_cast<unsigned long long>(act->sector));
    } else if (const auto* lost = std::get_if<FileLost>(&event)) {
      std::printf(" value %llu, compensated %llu",
                  static_cast<unsigned long long>(lost->value),
                  static_cast<unsigned long long>(lost->compensated_now));
    } else if (const auto* rent = std::get_if<RentDistributed>(&event)) {
      std::printf(" %llu tokens credited to providers",
                  static_cast<unsigned long long>(rent->total));
    }
    std::printf("\n");
  });

  // Providers rent out sectors; deposits are pledged automatically.
  std::printf("-- four providers register one 32 KiB sector each --\n");
  ClientAgent& client = sim.add_client(1'000'000);
  for (int i = 0; i < 4; ++i) {
    ProviderAgent& provider = sim.add_provider(1'000'000);
    const auto sector = provider.register_sector(8 * 4096);
    std::printf("  provider %llu: sector %llu, deposit %llu tokens\n",
                static_cast<unsigned long long>(provider.account()),
                static_cast<unsigned long long>(sector.value()),
                static_cast<unsigned long long>(
                    sim.network().deposits().remaining(sector.value())));
  }

  // The client stores a file.
  std::printf("\n-- client stores a 2000-byte file of value 20 "
              "(cp = k*value/minValue = 4 replicas) --\n");
  std::string text =
      "FileInsurer: a scalable and reliable protocol for decentralized "
      "file storage in blockchain. ";
  std::vector<std::uint8_t> data;
  while (data.size() < 2000) data.insert(data.end(), text.begin(), text.end());
  data.resize(2000);
  const auto file = client.store_file(data, 20);
  if (!file.is_ok()) {
    std::printf("store failed: %s\n", file.status().to_string().c_str());
    return 1;
  }

  std::printf("\n-- proof cycles pass (WindowPoSt every cycle) until the "
              "Exp(AvgRefresh)\n   countdown fires and a replica moves --\n");
  Time horizon = 6 * params.proof_cycle + 10;
  while (sim.network().stats().refreshes_completed == 0 &&
         horizon < 40 * params.proof_cycle) {
    sim.run_until(horizon);
    horizon += params.proof_cycle;
  }

  std::printf("\n-- client retrieves the file --\n");
  bool done = false;
  client.retrieve(file.value(), [&](bool ok) {
    done = true;
    std::printf("  retrieval %s\n", ok ? "succeeded, content verified "
                                         "against the Merkle root"
                                       : "FAILED");
  });
  sim.run_until(sim.now() + 100);
  if (!done) std::printf("  retrieval still pending?!\n");

  std::printf("\n-- client discards the file; space returns to CRs --\n");
  (void)client.discard_file(file.value());
  sim.run_until(sim.now() + 2 * params.proof_cycle);

  const auto& stats = sim.network().stats();
  std::printf("\n== summary ==\n");
  std::printf("  files stored / discarded / lost : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(stats.files_stored),
              static_cast<unsigned long long>(stats.files_discarded),
              static_cast<unsigned long long>(stats.files_lost));
  std::printf("  refreshes started / completed   : %llu / %llu\n",
              static_cast<unsigned long long>(stats.refreshes_started),
              static_cast<unsigned long long>(stats.refreshes_completed));
  std::printf("  punishments / corrupted sectors : %llu / %llu\n",
              static_cast<unsigned long long>(stats.punishments),
              static_cast<unsigned long long>(stats.sectors_corrupted));
  return 0;
}
