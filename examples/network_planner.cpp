// Network planner (§VI-A): "the parameters of FileInsurer should be
// properly set according to the distribution of files."
//
// An operator describes the expected workload and risk appetite; the
// planner turns Theorems 1–4 into concrete parameters (k, capPara,
// γ_deposit, sizeLimit). We then *validate the plan empirically*: build a
// network with the planned parameters, subject it to the target
// catastrophe, and check that losses stay under the promised bound and
// that every loss is compensated.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/planner.h"
#include "core/network.h"
#include "ledger/account.h"
#include "util/prng.h"

using namespace fi;

int main() {
  std::printf("== FileInsurer network planner (§VI-A) ==\n\n");

  // ---- The operator's brief ----------------------------------------------
  analysis::WorkloadProfile workload;
  workload.mean_file_size = 1.0;
  workload.mean_value_per_size = 4000.0;  // value-dense metadata workload
  workload.mean_size_times_value = 1.0;
  analysis::RiskTargets targets;
  targets.lambda = 0.5;             // survive half the fleet failing
  targets.max_deposit_ratio = 0.2;  // providers accept up to 20% collateral
  targets.max_collision_probability = 1e-30;

  const double ns = 200;  // planned fleet size
  const auto plan = analysis::plan_network(ns, workload, targets);
  std::printf("operator brief: Ns=%.0f sectors, survive lambda=%.1f, "
              "deposit budget %.1f%%\n",
              ns, targets.lambda, 100 * targets.max_deposit_ratio);
  if (!plan.feasible) {
    std::printf("no feasible plan under this budget — raise the deposit "
                "budget or lower lambda.\n");
    return 1;
  }
  std::printf("\nplanned configuration:\n");
  std::printf("  k (replicas per minValue)   = %u\n", plan.k);
  std::printf("  capPara (balanced, Thm 1)   = %.2f\n", plan.cap_para);
  std::printf("  gamma_deposit (Thm 4)       = %.4f\n", plan.gamma_deposit);
  std::printf("  gamma_lost bound (Thm 3)    = %.5f\n", plan.gamma_lost_bound);
  std::printf("  sizeLimit (Thm 2, <=1e-30)  = %.3f x sector capacity\n",
              plan.size_limit_fraction);

  // ---- Validate empirically ----------------------------------------------
  core::Params params;
  params.min_capacity = 32 * 1024;
  params.min_value = 10;
  params.k = plan.k;
  params.cap_para = plan.cap_para;
  params.gamma_deposit = plan.gamma_deposit;
  params.verify_proofs = false;

  ledger::Ledger ledger;
  core::Network net(params, ledger, /*seed=*/90210);
  net.set_auto_prove(true);
  const AccountId provider = ledger.create_account(1'000'000'000ull);
  std::vector<core::SectorId> sectors;
  for (std::size_t s = 0; s < static_cast<std::size_t>(ns); ++s) {
    sectors.push_back(
        net.sector_register(provider, params.min_capacity).value());
  }
  const AccountId client = ledger.create_account(1'000'000'000ull);
  int accepted = 0;
  for (int i = 0; i < 2000; ++i) {
    auto f = net.file_add(client, {1024, params.min_value, {}});
    if (!f.is_ok()) break;
    for (core::ReplicaIndex r = 0;
         r < net.allocations().replica_count(f.value()); ++r) {
      const core::AllocEntry& e = net.allocations().entry(f.value(), r);
      (void)net.file_confirm(provider, f.value(), r, e.next, {},
                             std::nullopt);
    }
    ++accepted;
  }
  net.advance_to(10);
  std::printf("\nvalidation network: %d files stored on %zu sectors "
              "(deposit locked: %llu)\n",
              accepted, sectors.size(),
              static_cast<unsigned long long>(
                  net.deposits().escrow_balance()));

  // The planned catastrophe: lambda of the fleet dies at once.
  util::Xoshiro256 rng(17);
  std::vector<std::size_t> order(sectors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    std::swap(order[i], order[i + rng.uniform_below(order.size() - i)]);
  }
  const auto dead = static_cast<std::size_t>(
      targets.lambda * static_cast<double>(sectors.size()));
  for (std::size_t i = 0; i < dead; ++i) {
    net.corrupt_sector_now(sectors[order[i]]);
  }
  net.advance_to(net.now() + 2 * params.proof_cycle);

  const auto& stats = net.stats();
  const double measured_loss =
      accepted == 0 ? 0.0
                    : static_cast<double>(stats.files_lost) / accepted;
  std::printf("\nafter losing %.0f%% of the fleet:\n", 100 * targets.lambda);
  std::printf("  measured loss fraction  : %.5f (plan bound %.5f) %s\n",
              measured_loss, plan.gamma_lost_bound,
              measured_loss <= plan.gamma_lost_bound ? "OK" : "EXCEEDED");
  std::printf("  value lost / compensated: %llu / %llu, outstanding %llu %s\n",
              static_cast<unsigned long long>(stats.value_lost),
              static_cast<unsigned long long>(stats.value_compensated),
              static_cast<unsigned long long>(
                  net.deposits().outstanding_liabilities()),
              (stats.value_compensated == stats.value_lost &&
               net.deposits().outstanding_liabilities() == 0)
                  ? "(fully covered)"
                  : "(SHORTFALL)");
  std::printf("\nThe planner's promise held: the theorems sized k and the "
              "deposit so the network\nabsorbs the target catastrophe with "
              "full compensation.\n");
  return measured_loss <= plan.gamma_lost_bound ? 0 : 1;
}
