#!/usr/bin/env python3
"""Structural lint for fi_orchestrate plan files (plans/*.plan).

Mirrors the schema checks of `fi::ExperimentPlan::from_config/validate`
(src/api/experiment_plan.cpp) closely enough to catch plan drift in the
fast CI lint job, which deliberately never builds the simulator: node
groups dense from 0, known keys only, node-kind key exclusivity, parent
edges that exist and are acyclic, and scenario paths that resolve. The
C++ parser stays authoritative — `fi_orchestrate --validate` is the
ground truth this script approximates without a compiler.

Usage: check_plan_files.py plans/*.plan
"""

import re
import sys
from pathlib import Path

NODE_NAME = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

# node.<i>.<key> keys the C++ parser consumes, by node kind.
COMMON_KEYS = {"name", "kind"}
SCENARIO_KEYS = COMMON_KEYS | {
    "scenario",
    "parent",
    "parent_snapshot",
    "parent_hash",
    "epochs",
    "workers",
}
BASELINE_KEYS = COMMON_KEYS | {
    "protocol",
    "seed",
    "sectors",
    "files",
    "file_size",
    "file_value",
    "lambda",
    "sybil_fraction",
    "epochs",
}
BASELINE_PROTOCOLS = {"fileinsurer", "filecoin", "sia", "storj", "arweave"}


def parse_kv(path: Path):
    """The key=value subset of util::Config (plans never use the JSON form)."""
    entries = {}
    errors = []
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            errors.append(f"{path}:{lineno}: not a key=value line: {raw.strip()!r}")
            continue
        key, value = (part.strip() for part in line.split("=", 1))
        if not key:
            errors.append(f"{path}:{lineno}: empty key")
        elif key in entries:
            errors.append(f"{path}:{lineno}: duplicate key {key!r}")
        else:
            entries[key] = value
    return entries, errors


def group_nodes(path: Path, entries):
    """Split node.<i>.* groups, insisting they are dense from 0."""
    errors = []
    nodes = {}
    for key in entries:
        match = re.match(r"^node\.(\d+)\.(.+)$", key)
        if match:
            nodes.setdefault(int(match.group(1)), {})[match.group(2)] = entries[key]
        elif key != "plan.name":
            errors.append(f"{path}: unknown plan key {key!r}")
    if not nodes:
        errors.append(f"{path}: plan has no nodes (node.0.name missing?)")
    elif sorted(nodes) != list(range(len(nodes))):
        errors.append(
            f"{path}: node indices {sorted(nodes)} are not dense from 0"
        )
    return [nodes[i] for i in sorted(nodes)], errors


def check_node(path: Path, index: int, node: dict, names: dict) -> list:
    where = f"{path}: node.{index}"
    errors = []
    name = node.get("name", "")
    if not NODE_NAME.match(name):
        errors.append(f"{where}: name {name!r} must match [A-Za-z0-9_-]{{1,64}}")
    elif name in names:
        errors.append(f"{where}: duplicate node name {name!r}")

    kind = node.get("kind", "scenario")
    if kind not in ("scenario", "baseline"):
        errors.append(f"{where}: unknown kind {kind!r}")
        return errors

    allowed = BASELINE_KEYS if kind == "baseline" else SCENARIO_KEYS
    for key in node:
        if key in allowed or (kind == "scenario" and key.startswith("set.")):
            continue
        errors.append(f"{where}: key {key!r} does not apply to a {kind} node")

    for key in ("epochs", "workers", "seed", "sectors", "files", "file_size",
                "file_value"):
        if key in node and not node[key].isdigit():
            errors.append(f"{where}: {key} must be an unsigned integer")
    for key in ("lambda", "sybil_fraction"):
        if key in node:
            try:
                value = float(node[key])
            except ValueError:
                value = -1.0
            if not 0.0 < value < 1.0:
                errors.append(f"{where}: {key} must be a fraction in (0, 1)")

    if kind == "baseline":
        protocol = node.get("protocol", "")
        if protocol not in BASELINE_PROTOCOLS:
            errors.append(
                f"{where}: unknown baseline protocol {protocol!r} "
                f"(valid: {', '.join(sorted(BASELINE_PROTOCOLS))})"
            )
        return errors

    sources = [k for k in ("scenario", "parent", "parent_snapshot") if k in node]
    if len(sources) != 1:
        errors.append(
            f"{where}: exactly one of scenario/parent/parent_snapshot is "
            f"required (got {sources or 'none'})"
        )
    if "parent_hash" in node:
        if "parent_snapshot" not in node:
            errors.append(f"{where}: parent_hash only applies to parent_snapshot edges")
        elif not re.match(r"^[0-9a-f]{64}$", node["parent_hash"]):
            errors.append(f"{where}: parent_hash must be 64 lowercase hex chars")
    if "scenario" in node:
        config = (path.parent / node["scenario"]).resolve()
        if not config.is_file():
            errors.append(f"{where}: scenario config not found: {config}")
    return errors


def check_plan(path: Path) -> list:
    entries, errors = parse_kv(path)
    if errors:
        return errors
    nodes, errors = group_nodes(path, entries)
    if errors:
        return errors

    names = {}
    for index, node in enumerate(nodes):
        errors.extend(check_node(path, index, node, names))
        if "name" in node:
            names[node["name"]] = index

    # Parent edges: must exist, point at scenario nodes, and be acyclic.
    for index, node in enumerate(nodes):
        parent = node.get("parent")
        if parent is None:
            continue
        if parent not in names:
            errors.append(f"{path}: node.{index}: unknown parent {parent!r}")
        elif nodes[names[parent]].get("kind", "scenario") == "baseline":
            errors.append(
                f"{path}: node.{index}: cannot fork from baseline {parent!r}"
            )
    for index in range(len(nodes)):
        at, hops = index, 0
        while "parent" in nodes[at] and nodes[at]["parent"] in names:
            at = names[nodes[at]["parent"]]
            hops += 1
            if hops > len(nodes):
                errors.append(f"{path}: node.{index}: parent chain contains a cycle")
                break
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: check_plan_files.py <plan file>...", file=sys.stderr)
        return 2
    failures = []
    for arg in argv[1:]:
        path = Path(arg)
        if not path.is_file():
            failures.append(f"{path}: no such file")
            continue
        problems = check_plan(path)
        failures.extend(problems)
        if not problems:
            print(f"plan ok: {path}")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
