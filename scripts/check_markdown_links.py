#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Scans every given markdown file (directories are walked for *.md) for
inline links/images `[text](target)`, and fails if a relative target does
not exist on disk (resolved against the file's own directory; `#anchor`
suffixes are stripped). External (`http://`, `https://`, `mailto:`)
links are skipped — CI must not depend on network reachability.

Standard library only, by design: the repo's tooling policy is no
third-party dependencies outside the C++ toolchain.
"""

import re
import sys
from pathlib import Path

# Inline links/images; deliberately simple — targets with parentheses or
# reference-style links are not used in this repo.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    in_code_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_block = not in_code_block
            continue
        if in_code_block:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{path}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files: list[Path] = []
    for arg in argv[1:]:
        root = Path(arg)
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.exists():
            files.append(root)
        else:
            print(f"no such file: {arg}", file=sys.stderr)
            return 2
    errors = [error for path in files for error in check_file(path)]
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'FAIL' if errors else 'ok'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
