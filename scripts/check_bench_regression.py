#!/usr/bin/env python3
"""Gate bench JSON results against a checked-in baseline.

Usage:
    check_bench_regression.py <measured.json> <baseline.json>
        [--threshold 2.0] [--append-trajectory <file.jsonl>]
        [--run-label <label>]

Both files follow the emitting bench's --json schema (docs/BENCHMARKS.md)
and carry a top-level "bench" name, which selects the gate schema:

  bench_scale_engine   worker_sweep / rent_scaling, lower-is-better, plus
                       a byte-identity check of every sweep point's report
                       against the serial run (the determinism contract).
  bench_retrieval      retrieval_throughput, HIGHER-is-better (requests/sec
                       through the full retrieval pipeline), plus a hard
                       floor of 10^5 requests/sec that no baseline drift
                       can relax.

For every point in the *baseline* the measured run must exist and must not
regress past baseline x/÷ threshold; the threshold is deliberately generous
(default 2x) because CI runners vary — the gate catches algorithmic
regressions (a hot path going accidentally quadratic, a sweep silently
serializing), not single-digit-percent noise. Hard floors are absolute:
they bind even when the baseline would allow worse.

A missing, unreadable, or structurally empty baseline is an ERROR, not a
pass: a gate that silently compares against nothing is worse than no gate
(it reads as green while checking zero points).

With --append-trajectory the script appends one JSON line summarizing the
measured run to the given file (creating it if needed), so CI can persist a
perf history across builds (docs/BENCHMARKS.md "perf trajectory").

Exit status: 0 when every check passes, 1 otherwise (including malformed
inputs).
"""

import argparse
import json
import sys

# bench name -> axis name -> (point key, gated metric, direction, hard floor)
# direction "lower": measured must be <= baseline * threshold.
# direction "higher": measured must be >= baseline / threshold.
# The hard floor (higher-direction only) binds regardless of the baseline.
BENCH_SCHEMAS = {
    "bench_scale_engine": {
        "worker_sweep": ("workers", "per_epoch_seconds", "lower", None),
        "rent_scaling": ("sectors", "us_per_rent_cycle", "lower", None),
    },
    "bench_retrieval": {
        "retrieval_throughput":
            ("files", "requests_per_second", "higher", 1e5),
    },
}


def load_json(path, role):
    """Loads a JSON file, translating I/O and parse failures into clean
    gate errors instead of tracebacks."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as exc:
        print(f"error: cannot read {role} file {path}: {exc}",
              file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"error: {role} file {path} is not valid JSON: {exc}",
              file=sys.stderr)
        return None


def resolve_schema(measured, baseline, measured_path, baseline_path):
    """Picks the gate schema from the measured run's "bench" name and
    insists the baseline was produced by the same bench — gating one
    bench's numbers against another's baseline must never pass silently."""
    problems = []
    name = measured.get("bench") if isinstance(measured, dict) else None
    if name not in BENCH_SCHEMAS:
        known = ", ".join(sorted(BENCH_SCHEMAS))
        problems.append(f"measured {measured_path}: top-level \"bench\" is "
                        f"{name!r}, expected one of: {known}")
        return None, problems
    base_name = baseline.get("bench") if isinstance(baseline, dict) else None
    if base_name != name:
        problems.append(f"baseline {baseline_path}: \"bench\" is "
                        f"{base_name!r} but the measured run is {name!r} — "
                        f"mismatched baseline")
        return None, problems
    return BENCH_SCHEMAS[name], problems


def validate_structure(data, path, role, schema):
    """A usable run/baseline has every gated axis, non-empty, with the keyed
    fields present in every row. Anything less means the gate would silently
    skip points."""
    problems = []
    if not isinstance(data, dict):
        return [f"{role} {path}: top level is not a JSON object"]
    for axis, (key, metric, _direction, _floor) in schema.items():
        rows = data.get(axis)
        if not isinstance(rows, list) or not rows:
            problems.append(f"{role} {path}: axis '{axis}' is missing or "
                            f"empty — nothing to gate")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or key not in row or metric not in row:
                problems.append(
                    f"{role} {path}: {axis}[{i}] lacks '{key}'/'{metric}'")
    return problems


def index_by(rows, key):
    return {row[key]: row for row in rows}


def check_axis(name, measured_rows, baseline_rows, key, metric, direction,
               floor, threshold, failures):
    measured = index_by(measured_rows, key)
    for point, base in index_by(baseline_rows, key).items():
        got = measured.get(point)
        if got is None:
            failures.append(
                f"{name}: baseline point {key}={point} missing from the "
                f"measured run")
            continue
        if direction == "lower":
            limit = base[metric] * threshold
            bad = got[metric] > limit
            relation = f"{got[metric]:.6f} <= {limit:.6f}"
        else:
            limit = base[metric] / threshold
            bad = got[metric] < limit
            relation = f"{got[metric]:.6f} >= {limit:.6f}"
        if bad:
            failures.append(
                f"{name} [{key}={point}]: {metric} regressed — measured "
                f"{got[metric]:.6f} vs allowed {limit:.6f} "
                f"(baseline {base[metric]:.6f}, threshold {threshold}, "
                f"{direction}-is-better)")
        else:
            print(f"ok: {name} [{key}={point}] {metric} {relation}")
        if floor is not None and got[metric] < floor:
            failures.append(
                f"{name} [{key}={point}]: {metric} {got[metric]:.1f} is "
                f"below the hard floor {floor:.0f}")
    # Hard floors bind measured points even when the baseline lacks them —
    # a pruned baseline must not disable the absolute requirement.
    if floor is not None:
        baseline_points = set(index_by(baseline_rows, key))
        for point, got in measured.items():
            if point not in baseline_points and got[metric] < floor:
                failures.append(
                    f"{name} [{key}={point}]: {metric} {got[metric]:.1f} is "
                    f"below the hard floor {floor:.0f} (no baseline point)")


def append_trajectory(path, label, measured, schema):
    """Appends a one-line summary of the measured run, so successive CI
    builds accumulate a perf history instead of discarding each run."""
    entry = {"label": label, "bench": measured.get("bench")}
    for axis, (key, metric, _direction, _floor) in schema.items():
        entry[axis] = [{key: row[key], metric: row[metric]}
                       for row in measured.get(axis, [])]
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError as exc:
        print(f"error: cannot append trajectory to {path}: {exc}",
              file=sys.stderr)
        return False
    print(f"trajectory: appended run '{label}' to {path}")
    return True


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench JSON against a baseline")
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed regression factor (default: 2.0)")
    parser.add_argument("--append-trajectory", metavar="FILE",
                        help="append a one-line JSON summary of the measured "
                             "run to this .jsonl file")
    parser.add_argument("--run-label", default="local",
                        help="label stored with the trajectory entry "
                             "(e.g. the CI run number)")
    args = parser.parse_args()

    measured = load_json(args.measured, "measured")
    baseline = load_json(args.baseline, "baseline")
    if measured is None or baseline is None:
        return 1

    schema, structural = resolve_schema(measured, baseline, args.measured,
                                        args.baseline)
    if schema is not None:
        structural += validate_structure(measured, args.measured, "measured",
                                         schema)
        structural += validate_structure(baseline, args.baseline, "baseline",
                                         schema)
    if structural:
        print(f"\n{len(structural)} structural problem(s) — refusing to "
              f"gate against a hollow input:", file=sys.stderr)
        for problem in structural:
            print(f"  - {problem}", file=sys.stderr)
        return 1

    failures = []
    for axis, (key, metric, direction, floor) in schema.items():
        check_axis(axis, measured.get(axis, []), baseline.get(axis, []),
                   key, metric, direction, floor, args.threshold, failures)

    for row in measured.get("worker_sweep", []):
        if not row.get("report_identical_to_serial", False):
            failures.append(
                f"worker_sweep [workers={row.get('workers')}]: report is "
                f"NOT byte-identical to the serial run — determinism "
                f"contract broken")

    if args.append_trajectory:
        if not append_trajectory(args.append_trajectory, args.run_label,
                                 measured, schema):
            return 1

    if failures:
        print(f"\n{len(failures)} bench regression check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall bench regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
