#!/usr/bin/env python3
"""Gate bench_scale_engine results against a checked-in baseline.

Usage:
    check_bench_regression.py <measured.json> <baseline.json> [--threshold 2.0]

Both files follow the bench_scale_engine --json schema (docs/BENCHMARKS.md).
For every point in the *baseline* the measured run must exist and must not
be slower than baseline * threshold; the threshold is deliberately generous
(default 2x) because CI runners vary — the gate catches algorithmic
regressions (a hot path going accidentally quadratic, a sweep silently
serializing), not single-digit-percent noise.  Additionally, every sweep
point's report must be byte-identical to the serial run — a cheap ride-along
check of the determinism contract.

Exit status: 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import sys


def index_by(rows, key):
    return {row[key]: row for row in rows}


def check_axis(name, measured_rows, baseline_rows, key, metric, threshold,
               failures):
    measured = index_by(measured_rows, key)
    for point, base in index_by(baseline_rows, key).items():
        got = measured.get(point)
        if got is None:
            failures.append(
                f"{name}: baseline point {key}={point} missing from the "
                f"measured run")
            continue
        limit = base[metric] * threshold
        if got[metric] > limit:
            failures.append(
                f"{name} [{key}={point}]: {metric} regressed — measured "
                f"{got[metric]:.6f} > allowed {limit:.6f} "
                f"(baseline {base[metric]:.6f} x threshold {threshold})")
        else:
            print(f"ok: {name} [{key}={point}] {metric} "
                  f"{got[metric]:.6f} <= {limit:.6f}")


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench_scale_engine JSON against a baseline")
    parser.add_argument("measured")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed slowdown factor (default: 2.0)")
    args = parser.parse_args()

    with open(args.measured, encoding="utf-8") as f:
        measured = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    failures = []
    check_axis("worker_sweep", measured.get("worker_sweep", []),
               baseline.get("worker_sweep", []), "workers",
               "per_epoch_seconds", args.threshold, failures)
    check_axis("rent_scaling", measured.get("rent_scaling", []),
               baseline.get("rent_scaling", []), "sectors",
               "us_per_rent_cycle", args.threshold, failures)

    for row in measured.get("worker_sweep", []):
        if not row.get("report_identical_to_serial", False):
            failures.append(
                f"worker_sweep [workers={row.get('workers')}]: report is "
                f"NOT byte-identical to the serial run — determinism "
                f"contract broken")

    if failures:
        print(f"\n{len(failures)} bench regression check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall bench regression checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
