#!/usr/bin/env bash
# Regenerates tests/golden/state_hashes.txt — the per-config canonical
# state hashes the CI golden-hashes job pins (docs/BENCHMARKS.md).
#
# Run this from the repository root after any change that legitimately
# alters simulation behavior (engine logic, RNG draw order, spec defaults,
# snapshot encoding) and commit the refreshed file together with the
# change. An unexplained diff here means you changed the simulation's
# observable behavior — treat it as a finding, not a chore.
#
#   scripts/update_golden_hashes.sh [build_dir]
#
# The hash is machine-independent by construction (fixed-width integer
# state, explicit little-endian encoding, worker-count invariant), so a
# locally generated file matches CI.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
GOLDEN=tests/golden/state_hashes.txt

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target fi_sim

mkdir -p "$(dirname "$GOLDEN")"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

for cfg in configs/*.cfg; do
  name=$(basename "$cfg" .cfg)
  echo "hashing $name ..." >&2
  hash=$("$BUILD_DIR"/fi_sim --scenario "$cfg" --hash-state --out /dev/null)
  printf '%s %s\n' "$name" "$hash" >> "$tmp"
done

mv "$tmp" "$GOLDEN"
trap - EXIT
echo "wrote $GOLDEN:"
cat "$GOLDEN"
